"""Equivalence and behaviour tests for the compiled policy engine.

The compiled engine (:mod:`repro.robots.compiled`) must be
*observably identical* to the legacy scan
(:func:`repro.robots.matcher.evaluate_rules` over
:meth:`~repro.robots.model.RobotsFile.matching_groups`): same verdict
and same winning rule on every input.  These tests check that over
randomized rule sets (hypothesis), every corpus fixture, and the
batch entry points.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.robots.compiled import CompiledRule, CompiledRuleSet
from repro.robots.corpus import (
    EXEMPT_SEO_BOTS,
    all_versions,
    build_version,
)
from repro.robots.diff import DEFAULT_PROBE_AGENTS, DEFAULT_PROBE_PATHS
from repro.robots.matcher import evaluate_rules
from repro.robots.model import Rule, RuleType
from repro.robots.policy import RobotsPolicy


def legacy_can_fetch(policy: RobotsPolicy, agent: str, path: str) -> bool:
    """The pre-compiled evaluation path, kept as the reference."""
    if path.startswith("/robots.txt"):
        return True
    if policy._forced_allow is not None:
        return policy._forced_allow
    assert policy.robots is not None
    groups = policy.robots.matching_groups(agent)
    rules = [rule for group in groups for rule in group.rules]
    return evaluate_rules(rules, path).allowed


# Pattern fragments exercise wildcards, anchors, percent escapes
# (single- and multi-byte), and raw non-ASCII.
fragments = st.lists(
    st.sampled_from(
        [
            "/a",
            "/bb",
            "/ccc",
            "/page",
            "/page-data",
            "/news/",
            "*",
            "$",
            "%61",
            "%2F",
            "%C3%A9",
            "é",
            ".html",
            "?q=1",
        ]
    ),
    min_size=1,
    max_size=5,
)
patterns = fragments.map("".join)
probe_paths = fragments.map(lambda parts: "/" + "".join(parts))
rule_sets = st.lists(
    st.tuples(st.sampled_from([RuleType.ALLOW, RuleType.DISALLOW]), patterns),
    min_size=0,
    max_size=12,
).map(
    lambda pairs: [
        Rule(type=kind, path=path, line_number=i)
        for i, (kind, path) in enumerate(pairs, start=1)
    ]
)


class TestRuleSetEquivalence:
    @given(rule_sets, probe_paths)
    @settings(max_examples=400)
    def test_decide_matches_legacy_scan(self, rules, path):
        compiled = CompiledRuleSet(rules)
        expected = evaluate_rules(rules, path)
        actual = compiled.decide(path)
        assert actual.allowed == expected.allowed
        assert actual.rule is expected.rule

    @given(rule_sets, st.lists(probe_paths, min_size=1, max_size=6))
    @settings(max_examples=100)
    def test_normalized_batch_matches_single(self, rules, paths):
        compiled = CompiledRuleSet(rules)
        for path in paths:
            assert compiled.allows(path) == evaluate_rules(rules, path).allowed

    def test_empty_rules_default_allow(self):
        result = CompiledRuleSet([]).decide("/anything")
        assert result.allowed
        assert result.rule is None

    def test_empty_disallow_excluded(self):
        ruleset = CompiledRuleSet([Rule(type=RuleType.DISALLOW, path="")])
        assert len(ruleset) == 0
        assert ruleset.allows("/x")


class TestSortedEarlyExit:
    def test_rules_sorted_by_descending_octets(self):
        ruleset = CompiledRuleSet(
            [
                Rule(type=RuleType.DISALLOW, path="/a"),
                Rule(type=RuleType.DISALLOW, path="/café"),
                Rule(type=RuleType.ALLOW, path="/abc"),
            ]
        )
        specs = [compiled.specificity for compiled in ruleset.rules]
        assert specs == sorted(specs, reverse=True)
        assert specs[0] == 10  # "/caf%C3%A9"

    def test_allow_sorts_before_disallow_on_tie(self):
        ruleset = CompiledRuleSet(
            [
                Rule(type=RuleType.DISALLOW, path="/page"),
                Rule(type=RuleType.ALLOW, path="/page"),
            ]
        )
        assert ruleset.rules[0].is_allow
        assert ruleset.decide("/page").allowed

    def test_literal_fast_path_skips_regex(self):
        literal = CompiledRule.compile(Rule(type=RuleType.DISALLOW, path="/a/b"))
        anchored = CompiledRule.compile(Rule(type=RuleType.DISALLOW, path="/a/b$"))
        wildcard = CompiledRule.compile(Rule(type=RuleType.DISALLOW, path="/a*/b"))
        assert literal.regex is None
        assert anchored.regex is None
        assert wildcard.regex is not None
        assert literal.matches("/a/b/c")
        assert anchored.matches("/a/b") and not anchored.matches("/a/b/c")
        assert wildcard.matches("/aX/b")


class TestCorpusEquivalence:
    def test_all_versions_all_agents_all_paths(self):
        agents = DEFAULT_PROBE_AGENTS + EXEMPT_SEO_BOTS + ("unknown-crawler",)
        paths = DEFAULT_PROBE_PATHS + (
            "/robots.txt",
            "/page-data/app.json",
            "/secure/area-042",
            "/dev-404-page/",
        )
        for version in all_versions():
            policy = RobotsPolicy.from_robots(build_version(version))
            for agent in agents:
                for path in paths:
                    assert policy.can_fetch(agent, path) == legacy_can_fetch(
                        policy, agent, path
                    ), (version, agent, path)

    def test_forced_policies(self):
        for policy in (RobotsPolicy.allow_all(), RobotsPolicy.disallow_all()):
            for path in DEFAULT_PROBE_PATHS + ("/robots.txt",):
                assert policy.can_fetch("GPTBot", path) == legacy_can_fetch(
                    policy, "GPTBot", path
                )


class TestBatchApis:
    def test_can_fetch_many_matches_single_calls(self):
        policy = RobotsPolicy.from_robots(build_version(all_versions()[2]))
        paths = list(DEFAULT_PROBE_PATHS) + ["/robots.txt"]
        for agent in DEFAULT_PROBE_AGENTS:
            batch = policy.can_fetch_many(agent, paths)
            assert batch == [policy.can_fetch(agent, path) for path in paths]

    def test_probe_matrix_matches_single_calls(self):
        policy = RobotsPolicy.from_robots(build_version(all_versions()[3]))
        matrix = policy.probe_matrix(DEFAULT_PROBE_AGENTS, DEFAULT_PROBE_PATHS)
        assert len(matrix) == len(DEFAULT_PROBE_AGENTS)
        for agent, row in zip(DEFAULT_PROBE_AGENTS, matrix):
            assert row == [
                policy.can_fetch(agent, path) for path in DEFAULT_PROBE_PATHS
            ]

    def test_probe_matrix_forced(self):
        matrix = RobotsPolicy.disallow_all().probe_matrix(
            ("A", "B"), ("/x", "/robots.txt")
        )
        assert matrix == [[False, True], [False, True]]

    def test_allowed_paths_uses_batch(self):
        policy = RobotsPolicy.from_text(
            "User-agent: *\nDisallow: /private\nAllow: /\n"
        )
        assert policy.allowed_paths("bot", ["/a", "/private/x"]) == ["/a"]


class TestMemoization:
    def test_tokens_sharing_groups_share_ruleset(self):
        # GPTBot and UnknownBot both fall through to the catch-all
        # group of v3: the compiled rule set must be built once.
        policy = RobotsPolicy.from_robots(build_version(all_versions()[3]))
        compiled = policy.compiled()
        ruleset_a, _ = compiled.ruleset_for("GPTBot")
        ruleset_b, _ = compiled.ruleset_for("UnknownBot")
        assert ruleset_a is ruleset_b

    def test_repeat_token_hits_cache(self):
        policy = RobotsPolicy.from_text("User-agent: *\nDisallow: /x\n")
        compiled = policy.compiled()
        first, _ = compiled.ruleset_for("GPTBot")
        second, _ = compiled.ruleset_for("GPTBot")
        assert first is second

    def test_policy_compiles_lazily_and_once(self):
        policy = RobotsPolicy.from_text("User-agent: *\nDisallow: /x\n")
        assert policy._compiled is None
        engine = policy.compiled()
        policy.can_fetch("GPTBot", "/x")
        assert policy.compiled() is engine
