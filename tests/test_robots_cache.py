"""Unit tests for the TTL robots.txt cache."""

from repro.robots.cache import DEFAULT_TTL_SECONDS, RobotsCache
from repro.robots.policy import RobotsPolicy


def make_policy() -> RobotsPolicy:
    return RobotsPolicy.from_text("User-agent: *\nDisallow: /x\n")


class TestRobotsCache:
    def test_put_then_get(self):
        cache = RobotsCache()
        cache.put("site.example", make_policy(), now=1000.0)
        assert cache.get("site.example", now=1000.0) is not None

    def test_miss_on_unknown_origin(self):
        assert RobotsCache().get("nope.example", now=0.0) is None

    def test_expiry_after_ttl(self):
        cache = RobotsCache(ttl_seconds=100.0)
        cache.put("s", make_policy(), now=0.0)
        assert cache.get("s", now=99.9) is not None
        assert cache.get("s", now=100.0) is None

    def test_default_ttl_is_24_hours(self):
        assert DEFAULT_TTL_SECONDS == 86_400.0

    def test_needs_refresh(self):
        cache = RobotsCache(ttl_seconds=10.0)
        assert cache.needs_refresh("s", now=0.0)
        cache.put("s", make_policy(), now=0.0)
        assert not cache.needs_refresh("s", now=5.0)
        assert cache.needs_refresh("s", now=11.0)

    def test_age(self):
        cache = RobotsCache()
        cache.put("s", make_policy(), now=50.0)
        assert cache.age("s", now=80.0) == 30.0
        assert cache.age("missing", now=0.0) is None

    def test_refresh_resets_clock(self):
        cache = RobotsCache(ttl_seconds=10.0)
        cache.put("s", make_policy(), now=0.0)
        cache.put("s", make_policy(), now=8.0)
        assert cache.get("s", now=15.0) is not None

    def test_invalidate(self):
        cache = RobotsCache()
        cache.put("s", make_policy(), now=0.0)
        cache.invalidate("s")
        assert "s" not in cache

    def test_eviction_at_capacity(self):
        cache = RobotsCache(max_entries=2)
        cache.put("a", make_policy(), now=0.0)
        cache.put("b", make_policy(), now=1.0)
        cache.put("c", make_policy(), now=2.0)
        assert len(cache) == 2
        assert "a" not in cache  # oldest evicted
        assert "c" in cache

    def test_clear(self):
        cache = RobotsCache()
        cache.put("a", make_policy(), now=0.0)
        cache.clear()
        assert len(cache) == 0

    def test_stale_entry_evicted_on_access(self):
        cache = RobotsCache(ttl_seconds=1.0)
        cache.put("s", make_policy(), now=0.0)
        cache.get("s", now=5.0)
        assert "s" not in cache


ROBOTS_TEXT = "User-agent: *\nDisallow: /x\n"


class TestCompiledPolicyReuse:
    def test_identical_refresh_reuses_policy_object(self):
        cache = RobotsCache(ttl_seconds=10.0)
        first = cache.refresh("s", ROBOTS_TEXT, now=0.0)
        compiled = first.compiled()
        first.can_fetch("GPTBot", "/x/1")  # warm the per-agent memo
        assert cache.get("s", now=20.0) is None  # TTL expired
        second = cache.refresh("s", ROBOTS_TEXT, now=20.0)
        assert second is first
        assert second.compiled() is compiled
        assert cache.recompilations_avoided == 1
        assert cache.get("s", now=25.0) is first  # fresh again

    def test_changed_text_recompiles(self):
        cache = RobotsCache(ttl_seconds=10.0)
        first = cache.refresh("s", ROBOTS_TEXT, now=0.0)
        second = cache.refresh(
            "s", ROBOTS_TEXT + "Disallow: /y\n", now=20.0
        )
        assert second is not first
        assert cache.recompilations_avoided == 0
        assert not second.can_fetch("GPTBot", "/y/1")

    def test_refresh_while_fresh_also_reuses(self):
        cache = RobotsCache(ttl_seconds=100.0)
        first = cache.refresh("s", ROBOTS_TEXT, now=0.0)
        second = cache.refresh("s", ROBOTS_TEXT, now=5.0)
        assert second is first
        assert cache.age("s", now=6.0) == 1.0  # clock advanced

    def test_put_with_text_enables_reuse(self):
        cache = RobotsCache(ttl_seconds=1.0)
        policy = make_policy()
        cache.put("s", policy, now=0.0, text=ROBOTS_TEXT)
        assert cache.get("s", now=5.0) is None
        assert cache.refresh("s", ROBOTS_TEXT, now=5.0) is policy

    def test_invalidate_clears_retired_entry(self):
        cache = RobotsCache(ttl_seconds=1.0)
        first = cache.refresh("s", ROBOTS_TEXT, now=0.0)
        cache.get("s", now=5.0)  # retire
        cache.invalidate("s")
        second = cache.refresh("s", ROBOTS_TEXT, now=6.0)
        assert second is not first


class TestRetiredSideTableBounds:
    """The retired side table is an optimization, not a second cache:
    under origin churn it must stay capped and report its evictions."""

    def retire(self, cache: RobotsCache, origin: str, now: float) -> None:
        cache.refresh(origin, ROBOTS_TEXT, now=now)
        cache.get(origin, now=now + cache.ttl_seconds + 1.0)

    def test_retired_table_capped_under_churn(self):
        cache = RobotsCache(ttl_seconds=1.0, max_retired=3)
        for index in range(10):
            self.retire(cache, f"site-{index}.example", now=float(index * 10))
        stats = cache.stats()
        assert stats["retired"] == 3
        assert stats["retired_evictions"] == 7
        assert len(cache) == 0

    def test_retired_eviction_drops_oldest(self):
        cache = RobotsCache(ttl_seconds=1.0, max_retired=2)
        for index, origin in enumerate(["a", "b", "c"]):
            self.retire(cache, origin, now=float(index * 10))
        # "a" was evicted from the side table; its refresh recompiles.
        first = cache.refresh("a", ROBOTS_TEXT, now=100.0)
        assert cache.recompilations_avoided == 0
        # "c" survived; its refresh reuses the retired compilation.
        cache.get("c", now=200.0)
        cache.refresh("c", ROBOTS_TEXT, now=200.0)
        assert cache.recompilations_avoided >= 1
        assert first is not None

    def test_zero_max_retired_disables_retention(self):
        cache = RobotsCache(ttl_seconds=1.0, max_retired=0)
        first = cache.refresh("s", ROBOTS_TEXT, now=0.0)
        cache.get("s", now=5.0)  # would retire; retention disabled
        second = cache.refresh("s", ROBOTS_TEXT, now=6.0)
        assert second is not first
        assert cache.stats()["retired"] == 0
        assert cache.stats()["retired_evictions"] == 1

    def test_live_eviction_counter(self):
        cache = RobotsCache(max_entries=2)
        for index, origin in enumerate(["a", "b", "c", "d"]):
            cache.put(origin, make_policy(), now=float(index))
        assert cache.stats()["evictions"] == 2
        assert cache.stats()["entries"] == 2

    def test_stats_snapshot_keys(self):
        stats = RobotsCache().stats()
        assert stats == {
            "entries": 0,
            "retired": 0,
            "max_entries": 10_000,
            "max_retired": 1_000,
            "recompilations_avoided": 0,
            "evictions": 0,
            "retired_evictions": 0,
        }
