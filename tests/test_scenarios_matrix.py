"""Matrix runner: per-cell caching, knob-edit invalidation, reductions."""

import dataclasses

from repro.scenarios import (
    ScenarioGrid,
    build_roc_tables,
    build_scorecard,
    deterrence_preset,
    roc_curve,
    run_cell,
    run_matrix,
)
from repro.scenarios.results import CellMetrics

#: Small-but-real grid: 1 bot x 2 strategies x 2 deterrence = 4 cells.
GRID = ScenarioGrid(
    bots=("GPTBot",),
    strategies=("honest", "fetch_violate"),
    deterrence=(deterrence_preset("none"), deterrence_preset("full")),
    robots=("base",),
    traffic=("steady",),
    days=1,
    accesses_target=120,
)


class TestMatrixCaching:
    def test_cold_run_computes_every_cell(self, tmp_path):
        result = run_matrix(GRID, cache_dir=str(tmp_path))
        assert result.computed == len(GRID)
        assert result.cached == 0
        assert len(result.cells) == len(GRID)

    def test_warm_rerun_computes_nothing(self, tmp_path):
        cold = run_matrix(GRID, cache_dir=str(tmp_path))
        warm = run_matrix(GRID, cache_dir=str(tmp_path))
        assert warm.computed == 0
        assert warm.cached == len(GRID)
        assert warm.stats.misses == 0
        assert repr(warm.cells) == repr(cold.cells)

    def test_knob_edit_recomputes_exactly_affected_cells(self, tmp_path):
        run_matrix(GRID, cache_dir=str(tmp_path))
        edited = GRID.with_knob("full.ratelimit_capacity=12")
        result = run_matrix(edited, cache_dir=str(tmp_path))
        # "full" appears in 2 of the 4 cells (one per strategy).
        assert result.computed == 2
        assert result.cached == 2
        recomputed = {
            result.cells[index].deterrence
            for index in result.stats.shard_misses["cells"]
        }
        assert recomputed == {"full"}

    def test_single_cell_knob_edit_recomputes_one_cell(self, tmp_path):
        """The ISSUE's acceptance bar: with one cell per deterrence
        config, editing one knob reruns exactly one cell."""
        grid = dataclasses.replace(GRID, strategies=("honest",))
        run_matrix(grid, cache_dir=str(tmp_path))
        result = run_matrix(
            grid.with_knob("full.ratelimit_capacity=12"),
            cache_dir=str(tmp_path),
        )
        assert result.computed == 1
        assert result.cached == 1
        assert result.stats.shard_misses["cells"] == [
            next(
                index
                for index, cell in enumerate(result.cells)
                if cell.deterrence == "full"
            )
        ]

    def test_subgrid_of_warm_grid_is_fully_warm(self, tmp_path):
        run_matrix(GRID, cache_dir=str(tmp_path))
        subgrid = dataclasses.replace(GRID, strategies=("honest",))
        result = run_matrix(subgrid, cache_dir=str(tmp_path))
        assert result.computed == 0
        assert result.cached == len(subgrid)

    def test_no_cache_flag_skips_reads_but_publishes(self, tmp_path):
        run_matrix(GRID, cache_dir=str(tmp_path))
        result = run_matrix(GRID, cache_dir=str(tmp_path), no_cache=True)
        assert result.computed == len(GRID)
        assert result.stats.published > 0

    def test_uncached_run_works_without_store(self):
        result = run_matrix(GRID)
        assert result.computed == len(GRID)
        assert len(result.cells) == len(GRID)


class TestCellResults:
    def test_cells_arrive_in_grid_order(self, tmp_path):
        result = run_matrix(GRID, cache_dir=str(tmp_path))
        assert [cell.cell_id for cell in result.cells] == [
            spec.cell_id() for spec in GRID.cells()
        ]

    def test_run_cell_is_deterministic(self):
        spec = GRID.cells()[0]
        assert repr(run_cell(spec)) == repr(run_cell(spec))

    def test_full_deterrence_stops_more_than_none(self, tmp_path):
        result = run_matrix(GRID, cache_dir=str(tmp_path))
        by_id = {cell.cell_id: cell for cell in result.cells}
        none_cell = by_id["GPTBot|fetch_violate|none|base|steady"]
        full_cell = by_id["GPTBot|fetch_violate|full|base|steady"]
        assert (
            full_cell.metrics.bot_deterred_fraction
            > none_cell.metrics.bot_deterred_fraction
        )

    def test_violator_attempts_disallowed_paths(self, tmp_path):
        result = run_matrix(GRID, cache_dir=str(tmp_path))
        by_id = {cell.cell_id: cell for cell in result.cells}
        violator = by_id["GPTBot|fetch_violate|none|base|steady"]
        assert violator.metrics.disallowed_attempts > 0
        # without enforcement every attempt leaks
        assert violator.metrics.violation_leak_fraction == 1.0

    def test_enforcement_closes_the_leak(self, tmp_path):
        result = run_matrix(GRID, cache_dir=str(tmp_path))
        by_id = {cell.cell_id: cell for cell in result.cells}
        enforced = by_id["GPTBot|fetch_violate|full|base|steady"]
        assert enforced.metrics.disallowed_served == 0


class TestReductions:
    def test_scorecard_one_row_per_config_in_grid_order(self, tmp_path):
        result = run_matrix(GRID, cache_dir=str(tmp_path))
        assert [row.deterrence for row in result.scorecard] == ["none", "full"]
        assert all(row.cells == 2 for row in result.scorecard)

    def test_roc_tables_cover_all_detectors(self, tmp_path):
        result = run_matrix(GRID, cache_dir=str(tmp_path))
        assert {table.detector for table in result.roc} == {
            "honeypot",
            "asn",
            "ua",
            "violation",
        }
        for table in result.roc:
            assert 0.0 <= table.auc <= 1.0

    def test_violation_detector_separates_the_violator(self, tmp_path):
        result = run_matrix(GRID, cache_dir=str(tmp_path))
        violation = next(
            t for t in result.roc if t.detector == "violation"
        )
        assert violation.auc >= 0.5

    def test_roc_curve_perfect_separation(self):
        auc, points = roc_curve(
            [(0.9, True), (0.8, True), (0.1, False), (0.0, False)]
        )
        assert auc == 1.0
        assert points[0].tpr == 0.5 and points[0].fpr == 0.0

    def test_roc_curve_no_separation(self):
        auc, _ = roc_curve([(0.5, True), (0.5, False)])
        assert auc == 0.5

    def test_scorecard_and_roc_pure_over_cells(self, tmp_path):
        result = run_matrix(GRID, cache_dir=str(tmp_path))
        assert repr(build_scorecard(result.cells)) == repr(result.scorecard)
        assert repr(build_roc_tables(result.cells)) == repr(result.roc)


class TestMetricsProperties:
    def _metrics(self, **overrides):
        defaults = dict(
            requests=10,
            served=6,
            blocked=1,
            robots_denied=1,
            throttled=1,
            tarpitted=1,
            bytes_sent=1000,
            robots_fetches=2,
            trap_hits=1,
            disallowed_attempts=4,
            disallowed_served=1,
            bot_requests=8,
            bot_served=4,
            noise_requests=2,
            noise_served=2,
            distinct_uas=1,
            distinct_ips=2,
            distinct_asns=1,
            score_honeypot=0.1,
            score_asn=0.0,
            score_ua=0.0,
            score_violation=0.4,
        )
        defaults.update(overrides)
        return CellMetrics(**defaults)

    def test_derived_fractions(self):
        metrics = self._metrics()
        assert metrics.bot_deterred_fraction == 0.5
        assert metrics.noise_collateral_fraction == 0.0
        assert metrics.violation_leak_fraction == 0.25

    def test_zero_denominators(self):
        metrics = self._metrics(
            bot_requests=0,
            bot_served=0,
            noise_requests=0,
            noise_served=0,
            disallowed_attempts=0,
            disallowed_served=0,
        )
        assert metrics.bot_deterred_fraction == 0.0
        assert metrics.noise_collateral_fraction == 0.0
        assert metrics.violation_leak_fraction == 0.0
