"""Unit tests for the repro-study CLI."""

import pytest

from repro.cli import main


class TestVersionsCommand:
    def test_prints_four_versions(self, capsys):
        assert main(["versions"]) == 0
        out = capsys.readouterr().out
        assert "# base" in out
        assert "# v1: crawl delay" in out
        assert "Crawl-delay: 30" in out
        assert "# v3: disallow all" in out


class TestRobotsCommand:
    def test_validate_and_query(self, tmp_path, capsys):
        robots = tmp_path / "robots.txt"
        robots.write_text(
            "User-agent: *\nDisallow: /private\nCrawl-delay: 10\n"
        )
        code = main(
            [
                "robots",
                str(robots),
                "--agent",
                "GPTBot",
                "--path",
                "/private/x",
                "--path",
                "/public",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "no validator findings" in out
        assert "crawl delay for 'GPTBot': 10s" in out
        assert "DENY  /private/x" in out
        assert "ALLOW /public" in out

    def test_findings_printed(self, tmp_path, capsys):
        robots = tmp_path / "robots.txt"
        robots.write_text("Disallow: /early\nUser-agent: *\n")
        main(["robots", str(robots)])
        out = capsys.readouterr().out
        assert "rule-no-group" in out


class TestSimulateAnalyzeRoundTrip:
    @pytest.mark.slow
    def test_simulate_then_analyze(self, tmp_path, capsys):
        log = tmp_path / "study.jsonl"
        assert (
            main(
                [
                    "simulate",
                    "--scale",
                    "0.01",
                    "--seed",
                    "3",
                    "--output",
                    str(log),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "wrote" in out
        assert log.exists()

        assert (
            main(["analyze", str(log), "--seed", "3", "--experiments", "T4"])
            == 0
        )
        out = capsys.readouterr().out
        assert "Table 4" in out

    def test_simulate_csv_format(self, tmp_path, capsys):
        log = tmp_path / "study.csv"
        main(
            [
                "simulate",
                "--scale",
                "0.002",
                "--no-noise",
                "--output",
                str(log),
                "--format",
                "csv",
            ]
        )
        header = log.read_text().splitlines()[0]
        assert header.startswith("useragent,timestamp,ip_hash")


class TestReportCommand:
    def test_report_selected_experiment(self, capsys):
        assert main(["report", "--scale", "0.005", "--experiments", "T2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
