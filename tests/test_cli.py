"""Unit tests for the repro-study CLI."""

import pytest

from repro.cli import main


class TestVersionsCommand:
    def test_prints_four_versions(self, capsys):
        assert main(["versions"]) == 0
        out = capsys.readouterr().out
        assert "# base" in out
        assert "# v1: crawl delay" in out
        assert "Crawl-delay: 30" in out
        assert "# v3: disallow all" in out


class TestRobotsCommand:
    def test_validate_and_query(self, tmp_path, capsys):
        robots = tmp_path / "robots.txt"
        robots.write_text(
            "User-agent: *\nDisallow: /private\nCrawl-delay: 10\n"
        )
        code = main(
            [
                "robots",
                str(robots),
                "--agent",
                "GPTBot",
                "--path",
                "/private/x",
                "--path",
                "/public",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "no validator findings" in out
        assert "crawl delay for 'GPTBot': 10s" in out
        assert "DENY  /private/x" in out
        assert "ALLOW /public" in out

    def test_findings_printed(self, tmp_path, capsys):
        robots = tmp_path / "robots.txt"
        robots.write_text("Disallow: /early\nUser-agent: *\n")
        main(["robots", str(robots)])
        out = capsys.readouterr().out
        assert "rule-no-group" in out


class TestSimulateAnalyzeRoundTrip:
    @pytest.mark.slow
    def test_simulate_then_analyze(self, tmp_path, capsys):
        log = tmp_path / "study.jsonl"
        assert (
            main(
                [
                    "simulate",
                    "--scale",
                    "0.01",
                    "--seed",
                    "3",
                    "--output",
                    str(log),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "wrote" in out
        assert log.exists()

        assert (
            main(["analyze", str(log), "--seed", "3", "--experiments", "T4"])
            == 0
        )
        out = capsys.readouterr().out
        assert "Table 4" in out

    def test_simulate_csv_format(self, tmp_path, capsys):
        log = tmp_path / "study.csv"
        main(
            [
                "simulate",
                "--scale",
                "0.002",
                "--no-noise",
                "--output",
                str(log),
                "--format",
                "csv",
            ]
        )
        header = log.read_text().splitlines()[0]
        assert header.startswith("useragent,timestamp,ip_hash")


class TestReportCommand:
    def test_report_selected_experiment(self, capsys):
        assert main(["report", "--scale", "0.005", "--experiments", "T2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out


class TestConvertCommand:
    def _simulate(self, tmp_path) -> str:
        log = tmp_path / "study.jsonl"
        assert (
            main(
                [
                    "simulate",
                    "--scale",
                    "0.002",
                    "--no-noise",
                    "--output",
                    str(log),
                ]
            )
            == 0
        )
        return str(log)

    def test_jsonl_to_csv_and_back(self, tmp_path, capsys):
        from repro.logs.io import read_csv, read_jsonl

        log = self._simulate(tmp_path)
        capsys.readouterr()
        csv_path = tmp_path / "study.csv"
        assert (
            main(
                ["convert", log, str(csv_path), "--from", "jsonl", "--to", "csv"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "converted" in out
        assert "(jsonl)" in out and "(csv)" in out
        assert list(read_csv(csv_path)) == list(read_jsonl(log))

    def test_parquet_target_without_pyarrow_fails_cleanly(
        self, tmp_path, capsys
    ):
        from repro.logs.parquet import HAVE_PYARROW

        log = self._simulate(tmp_path)
        capsys.readouterr()
        target = tmp_path / "study.parquet"
        code = main(["convert", log, str(target)])  # defaults: jsonl -> parquet
        if HAVE_PYARROW:
            assert code == 0
            assert target.exists()
        else:
            assert code == 2
            err = capsys.readouterr().err
            assert "pyarrow" in err
            assert err.startswith("error:")
