"""Unit tests for semantic robots.txt diffing."""

from repro.robots.corpus import RobotsVersion, render_version
from repro.robots.diff import (
    diff_robots,
    render_diff,
)


class TestBasicDiff:
    def test_revocation_detected(self):
        old = "User-agent: *\nAllow: /\n"
        new = "User-agent: *\nDisallow: /\n"
        diff = diff_robots(old, new, agents=["GPTBot"], paths=["/x"])
        assert len(diff.revocations) == 1
        assert diff.is_stricter
        assert diff.strictness_score() == 1.0

    def test_grant_detected(self):
        old = "User-agent: *\nDisallow: /\n"
        new = "User-agent: *\nAllow: /\n"
        diff = diff_robots(old, new, agents=["GPTBot"], paths=["/x"])
        assert len(diff.grants) == 1
        assert not diff.is_stricter
        assert diff.strictness_score() == -1.0

    def test_no_change(self):
        text = "User-agent: *\nDisallow: /private\n"
        diff = diff_robots(text, text)
        assert diff.changes == []
        assert diff.strictness_score() == 0.0

    def test_reordering_is_not_a_change(self):
        old = "User-agent: *\nDisallow: /a\nDisallow: /b\n"
        new = "User-agent: *\nDisallow: /b\nDisallow: /a\n"
        assert diff_robots(old, new).changes == []

    def test_delay_change(self):
        old = "User-agent: *\nAllow: /\n"
        new = "User-agent: *\nAllow: /\nCrawl-delay: 30\n"
        diff = diff_robots(old, new, agents=["GPTBot"], paths=["/"])
        (delay,) = diff.delay_changes
        assert delay.old_delay is None
        assert delay.new_delay == 30.0

    def test_agent_group_additions(self):
        old = "User-agent: *\nAllow: /\n"
        new = "User-agent: GPTBot\nDisallow: /\n\nUser-agent: *\nAllow: /\n"
        diff = diff_robots(old, new)
        assert diff.added_agents == ["gptbot"]
        assert diff.removed_agents == []


class TestPaperVersions:
    def _diff(self, older: RobotsVersion, newer: RobotsVersion):
        return diff_robots(render_version(older), render_version(newer))

    def test_base_to_v1_only_delay(self):
        diff = self._diff(RobotsVersion.BASE, RobotsVersion.V1_CRAWL_DELAY)
        assert diff.changes == []
        assert diff.delay_changes
        assert all(d.new_delay == 30.0 for d in diff.delay_changes)

    def test_v1_to_v2_revokes_nonexempt_content(self):
        diff = self._diff(RobotsVersion.V1_CRAWL_DELAY, RobotsVersion.V2_ENDPOINT)
        assert diff.is_stricter
        revoked = {(d.agent, d.path) for d in diff.revocations}
        assert ("GPTBot", "/news/article-001") in revoked
        assert ("Googlebot", "/news/article-001") not in revoked

    def test_v2_to_v3_revokes_page_data(self):
        diff = self._diff(RobotsVersion.V2_ENDPOINT, RobotsVersion.V3_DISALLOW_ALL)
        revoked = {(d.agent, d.path) for d in diff.revocations}
        assert ("GPTBot", "/page-data/index/page-data.json") in revoked

    def test_strictness_monotone_over_versions(self):
        """The paper's gradient: each swap is stricter than the last
        baseline, cumulatively."""
        versions = [
            RobotsVersion.BASE,
            RobotsVersion.V1_CRAWL_DELAY,
            RobotsVersion.V2_ENDPOINT,
            RobotsVersion.V3_DISALLOW_ALL,
        ]
        cumulative = [
            diff_robots(
                render_version(RobotsVersion.BASE), render_version(version)
            ).strictness_score()
            for version in versions
        ]
        assert cumulative == sorted(cumulative)


class TestRender:
    def test_render_mentions_changes(self):
        old = "User-agent: *\nAllow: /\n"
        new = "User-agent: *\nDisallow: /\nCrawl-delay: 10\n"
        text = render_diff(diff_robots(old, new, agents=["Bot"], paths=["/x"]))
        assert "- Bot x /x" in text
        assert "crawl-delay" in text
        assert "strictness" in text

    def test_render_no_changes(self):
        text = "User-agent: *\nDisallow: /x\n"
        assert render_diff(diff_robots(text, text)) == "(no semantic changes)"
