"""Unit tests for the RFC 9309 parser."""

import pytest

from repro.exceptions import RobotsSizeError
from repro.robots.model import RuleType
from repro.robots.parser import DEFAULT_MAX_BYTES, ParserOptions, parse, parse_bytes

SIMPLE = """\
User-agent: Googlebot
Allow: /
Crawl-delay: 15

User-agent: *
Allow: /allowed-data/
Disallow: /restricted-data/
Crawl-delay: 30

Sitemap: https://x.example/sitemap/sitemap-0.xml
"""


class TestBasicParsing:
    def test_two_groups(self):
        robots = parse(SIMPLE)
        assert len(robots.groups) == 2
        assert robots.groups[0].user_agents == ["Googlebot"]
        assert robots.groups[1].user_agents == ["*"]

    def test_rules_in_order(self):
        group = parse(SIMPLE).groups[1]
        assert [(rule.type, rule.path) for rule in group.rules] == [
            (RuleType.ALLOW, "/allowed-data/"),
            (RuleType.DISALLOW, "/restricted-data/"),
        ]

    def test_crawl_delay_attached_to_group(self):
        robots = parse(SIMPLE)
        assert robots.groups[0].crawl_delay == 15.0
        assert robots.groups[1].crawl_delay == 30.0

    def test_sitemap_collected(self):
        assert parse(SIMPLE).sitemaps == [
            "https://x.example/sitemap/sitemap-0.xml"
        ]

    def test_empty_document(self):
        robots = parse("")
        assert robots.groups == []
        assert robots.is_empty

    def test_consecutive_user_agents_share_group(self):
        robots = parse("User-agent: a\nUser-agent: b\nDisallow: /x\n")
        assert len(robots.groups) == 1
        assert robots.groups[0].user_agents == ["a", "b"]

    def test_user_agent_after_rules_starts_new_group(self):
        robots = parse(
            "User-agent: a\nDisallow: /x\nUser-agent: b\nDisallow: /y\n"
        )
        assert len(robots.groups) == 2

    def test_blank_lines_do_not_split_groups(self):
        robots = parse("User-agent: a\n\n\nDisallow: /x\n")
        assert len(robots.groups) == 1
        assert len(robots.groups[0].rules) == 1


class TestRobustness:
    def test_rule_before_group_counted_invalid(self):
        robots = parse("Disallow: /x\nUser-agent: *\nDisallow: /y\n")
        assert robots.invalid_lines == 1
        assert len(robots.groups[0].rules) == 1

    def test_unknown_fields_skipped(self):
        robots = parse("User-agent: *\nNoindex: /x\nDisallow: /y\n")
        assert robots.invalid_lines == 1
        assert len(robots.groups[0].rules) == 1

    def test_negative_crawl_delay_rejected(self):
        robots = parse("User-agent: *\nCrawl-delay: -5\n")
        assert robots.groups[0].crawl_delay is None
        assert robots.invalid_lines == 1

    def test_non_numeric_crawl_delay_rejected(self):
        robots = parse("User-agent: *\nCrawl-delay: soon\n")
        assert robots.groups[0].crawl_delay is None

    def test_extreme_crawl_delay_clamped(self):
        robots = parse("User-agent: *\nCrawl-delay: 999999\n")
        assert robots.groups[0].crawl_delay == 3600.0

    def test_crawl_delay_ignored_when_disabled(self):
        options = ParserOptions(honor_crawl_delay=False)
        robots = parse("User-agent: *\nCrawl-delay: 30\n", options)
        assert robots.groups[0].crawl_delay is None

    def test_empty_user_agent_invalid(self):
        robots = parse("User-agent:\nDisallow: /x\n")
        assert robots.invalid_lines >= 1

    def test_group_without_rules_kept(self):
        robots = parse("User-agent: lonely\n")
        assert len(robots.groups) == 1
        assert robots.groups[0].rules == []

    def test_byte_soup_never_raises(self):
        parse("\x00\x01\x02 garbage :: ###\nUser-agent *;;\n")


class TestSizeCap:
    def test_oversize_truncated_by_default(self):
        body = "User-agent: *\n" + ("# pad\n" * 200_000)
        robots = parse(body)
        assert robots.truncated
        assert robots.source_bytes == DEFAULT_MAX_BYTES

    def test_oversize_raises_when_truncation_disabled(self):
        body = "User-agent: *\n" + ("# pad\n" * 200_000)
        with pytest.raises(RobotsSizeError):
            parse(body, ParserOptions(truncate_oversize=False))

    def test_rules_before_cap_survive_truncation(self):
        body = "User-agent: *\nDisallow: /secret\n" + ("# pad\n" * 200_000)
        robots = parse(body)
        assert robots.groups[0].rules[0].path == "/secret"

    def test_small_document_not_truncated(self):
        assert not parse(SIMPLE).truncated


class TestParseBytes:
    def test_utf8_bytes(self):
        robots = parse_bytes("User-agent: *\nDisallow: /café\n".encode())
        assert robots.groups[0].rules[0].path == "/café"

    def test_invalid_utf8_replaced(self):
        robots = parse_bytes(b"User-agent: *\nDisallow: /\xff\xfe\n")
        assert len(robots.groups[0].rules) == 1


class TestGroupSelection:
    def test_specific_group_wins(self):
        robots = parse(SIMPLE)
        group = robots.select_group("Googlebot")
        assert group is not None and group.user_agents == ["Googlebot"]

    def test_fallback_to_catch_all(self):
        robots = parse(SIMPLE)
        group = robots.select_group("UnknownBot")
        assert group is not None and group.is_catch_all

    def test_prefix_token_match(self):
        robots = parse(SIMPLE)
        group = robots.select_group("Googlebot-Image")
        assert group is not None and group.user_agents == ["Googlebot"]

    def test_longest_token_wins(self):
        text = "User-agent: bot\nDisallow: /a\nUser-agent: botmax\nDisallow: /b\n"
        robots = parse(text)
        group = robots.select_group("botmax")
        assert group is not None and group.user_agents == ["botmax"]

    def test_repeated_token_groups_merged(self):
        text = (
            "User-agent: dup\nDisallow: /a\n\n"
            "User-agent: dup\nDisallow: /b\n"
        )
        robots = parse(text)
        groups = robots.matching_groups("dup")
        rules = [rule.path for group in groups for rule in group.rules]
        assert sorted(rules) == ["/a", "/b"]

    def test_no_groups_returns_none(self):
        assert parse("").select_group("any") is None


class TestRender:
    def test_round_trip_semantics(self):
        robots = parse(SIMPLE)
        reparsed = parse(robots.render())
        assert len(reparsed.groups) == len(robots.groups)
        assert reparsed.sitemaps == robots.sitemaps
        assert reparsed.groups[1].crawl_delay == 30.0
