"""Unit tests for the deterrence toolkit."""

import pytest

from repro.deterrence.blocklist import Blocklist, EscalationRule
from repro.deterrence.challenge import (
    ChallengeIssuer,
    expected_attempts,
    solve,
)
from repro.deterrence.gateway import DeterrenceGateway, default_gateway
from repro.deterrence.ratelimit import RateKey, RateLimiter, TokenBucket
from repro.deterrence.tarpit import TARPIT_PREFIX, TarpitGenerator
from repro.robots.policy import RobotsPolicy
from repro.web.message import Request
from repro.web.server import WebServer
from repro.web.site import Page, Website


def make_request(
    path: str = "/",
    ip: str = "198.51.100.1",
    ua: str = "Bot/1.0",
    timestamp: float = 0.0,
    asn: int = 1,
) -> Request:
    return Request(
        host="a.example",
        path=path,
        user_agent=ua,
        client_ip=ip,
        asn=asn,
        timestamp=timestamp,
    )


def make_server() -> WebServer:
    server = WebServer()
    site = Website(hostname="a.example")
    site.add_page(Page(path="/", size_bytes=1000, section="home"))
    server.host(site)
    return server


class TestTokenBucket:
    def test_burst_then_throttle(self):
        bucket = TokenBucket(capacity=3, refill_per_second=1.0)
        assert all(bucket.try_consume(0.0) for _ in range(3))
        assert not bucket.try_consume(0.0)

    def test_refill(self):
        bucket = TokenBucket(capacity=2, refill_per_second=1.0)
        bucket.try_consume(0.0)
        bucket.try_consume(0.0)
        assert not bucket.try_consume(0.5)
        assert bucket.try_consume(1.6)

    def test_capacity_cap(self):
        bucket = TokenBucket(capacity=2, refill_per_second=10.0)
        bucket.try_consume(0.0)
        # Long idle: refills to capacity, not beyond.
        assert bucket.try_consume(100.0)
        assert bucket.try_consume(100.0)
        assert not bucket.try_consume(100.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(capacity=0, refill_per_second=1)
        with pytest.raises(ValueError):
            TokenBucket(capacity=1, refill_per_second=0)


class TestRateLimiter:
    def test_per_ip_isolation(self):
        limiter = RateLimiter(capacity=1.0, refill_per_second=0.001)
        assert limiter.check("a", 1, "ua", now=0.0)
        assert not limiter.check("a", 1, "ua", now=0.1)
        assert limiter.check("b", 1, "ua", now=0.1)
        assert limiter.tracked_identities == 2

    def test_keying_by_asn(self):
        limiter = RateLimiter(
            key=RateKey.ASN, capacity=1.0, refill_per_second=0.001
        )
        assert limiter.check("a", 7, "ua", now=0.0)
        assert not limiter.check("b", 7, "other", now=0.1)

    def test_counters(self):
        limiter = RateLimiter(capacity=1.0, refill_per_second=0.001)
        limiter.check("a", 1, "ua", now=0.0)
        limiter.check("a", 1, "ua", now=0.1)
        assert limiter.allowed == 1
        assert limiter.throttled == 1


class TestBlocklist:
    def test_ip_block_and_expiry(self):
        blocklist = Blocklist()
        blocklist.block_ip("1.2.3.4", now=0.0, ttl=10.0, reason="abuse")
        assert blocklist.is_blocked("1.2.3.4", 1, "ua", now=5.0) == "abuse"
        assert blocklist.is_blocked("1.2.3.4", 1, "ua", now=11.0) is None

    def test_permanent_block(self):
        blocklist = Blocklist()
        blocklist.block_asn(99, now=0.0)
        assert blocklist.is_blocked("any", 99, "ua", now=1e12) is not None

    def test_agent_fragment_block(self):
        blocklist = Blocklist()
        blocklist.block_agent("Bytespider", now=0.0)
        assert blocklist.is_blocked("x", 1, "Mozilla Bytespider/1.0", 1.0)
        assert blocklist.is_blocked("x", 1, "GPTBot/1.2", 1.0) is None

    def test_unblock(self):
        blocklist = Blocklist()
        blocklist.block_ip("1.2.3.4", now=0.0)
        blocklist.unblock_ip("1.2.3.4")
        assert blocklist.is_blocked("1.2.3.4", 1, "ua", now=1.0) is None


class TestEscalation:
    def test_strikes_lead_to_block(self):
        blocklist = Blocklist()
        rule = EscalationRule(strikes=3, window_seconds=100.0, block_ttl=50.0)
        assert not rule.record_throttle("ip", 0.0, blocklist)
        assert not rule.record_throttle("ip", 1.0, blocklist)
        assert rule.record_throttle("ip", 2.0, blocklist)
        assert blocklist.is_blocked("ip", 1, "ua", now=3.0) is not None
        assert rule.escalations == 1

    def test_old_strikes_expire(self):
        blocklist = Blocklist()
        rule = EscalationRule(strikes=3, window_seconds=10.0)
        rule.record_throttle("ip", 0.0, blocklist)
        rule.record_throttle("ip", 1.0, blocklist)
        assert not rule.record_throttle("ip", 50.0, blocklist)


class TestTarpit:
    def test_deterministic_pages(self):
        generator = TarpitGenerator(seed="s")
        path = generator.entry_path()
        assert generator.page(path).body == generator.page(path).body

    def test_links_stay_in_maze(self):
        generator = TarpitGenerator(seed="s", links_per_page=4)
        page = generator.page(generator.entry_path())
        assert len(page.links) == 4
        assert all(link.startswith(TARPIT_PREFIX) for link in page.links)

    def test_maze_expands(self):
        generator = TarpitGenerator(seed="s")
        seen = {generator.entry_path()}
        frontier = [generator.entry_path()]
        for _ in range(3):
            page = generator.page(frontier.pop(0))
            for link in page.links:
                assert link not in seen or True
                seen.add(link)
                frontier.append(link)
        assert len(seen) > 10

    def test_different_seeds_different_mazes(self):
        a = TarpitGenerator(seed="a").entry_path()
        b = TarpitGenerator(seed="b").entry_path()
        assert a != b


class TestChallenge:
    def test_solve_and_verify(self):
        issuer = ChallengeIssuer(difficulty_bits=8)
        challenge = issuer.issue("client-1")
        nonce = solve(challenge)
        assert nonce is not None
        assert issuer.verify(challenge, nonce)
        assert issuer.verified == 1

    def test_wrong_nonce_rejected(self):
        issuer = ChallengeIssuer(difficulty_bits=16)
        challenge = issuer.issue("client-1")
        # A specific nonce almost surely fails at 16 bits.
        assert not issuer.verify(challenge, 1)

    def test_identity_binding(self):
        issuer = ChallengeIssuer()
        assert issuer.issue("a").token != issuer.issue("b").token

    def test_expected_attempts(self):
        assert expected_attempts(16) == 65536

    def test_bad_difficulty(self):
        with pytest.raises(ValueError):
            ChallengeIssuer(difficulty_bits=0)


class TestGateway:
    def test_passthrough_serves_origin(self):
        gateway = DeterrenceGateway(server=make_server())
        response = gateway.handle(make_request())
        assert response.status == 200
        assert gateway.stats.served == 1

    def test_blocklist_precedes_everything(self):
        blocklist = Blocklist()
        blocklist.block_ip("198.51.100.1", now=0.0)
        gateway = DeterrenceGateway(server=make_server(), blocklist=blocklist)
        assert gateway.handle(make_request()).status == 403
        assert gateway.stats.blocked == 1

    def test_rate_limit_429(self):
        gateway = DeterrenceGateway(
            server=make_server(),
            limiter=RateLimiter(capacity=1.0, refill_per_second=0.001),
        )
        gateway.handle(make_request(timestamp=0.0))
        assert gateway.handle(make_request(timestamp=0.1)).status == 429
        assert gateway.stats.throttled == 1

    def test_escalation_converts_throttle_to_block(self):
        blocklist = Blocklist()
        gateway = DeterrenceGateway(
            server=make_server(),
            blocklist=blocklist,
            limiter=RateLimiter(capacity=1.0, refill_per_second=0.001),
            escalation=EscalationRule(strikes=2, window_seconds=100.0),
        )
        for step in range(4):
            gateway.handle(make_request(timestamp=float(step)))
        assert gateway.stats.blocked >= 1

    def test_tarpit_for_listed_agent(self):
        gateway = DeterrenceGateway(
            server=make_server(),
            tarpit=TarpitGenerator(),
            tarpit_agents=("Bytespider",),
        )
        response = gateway.handle(
            make_request(ua="Mozilla (compatible; Bytespider)")
        )
        assert response.status == 200
        assert b"archive-mirror" in (response.body or b"")
        assert gateway.stats.tarpitted == 1
        # Other agents get real content.
        assert gateway.handle(make_request(ua="GPTBot/1.2")).body is None

    def test_deterred_fraction(self):
        gateway = default_gateway(make_server())
        for step in range(200):
            gateway.handle(
                make_request(ip="hammer", timestamp=step * 0.01)
            )
        assert gateway.stats.deterred_fraction() > 0.5

    def test_robots_policy_enforced(self):
        policy = RobotsPolicy.from_text(
            "User-agent: GPTBot\nDisallow: /\n\nUser-agent: *\nAllow: /\n"
        )
        gateway = DeterrenceGateway(server=make_server(), robots=policy)
        denied = gateway.handle(make_request(ua="GPTBot"))
        assert denied.status == 403
        assert gateway.stats.robots_denied == 1
        allowed = gateway.handle(make_request(ua="Googlebot"))
        assert allowed.status == 200
        # Denials count toward the deterred fraction.
        assert gateway.stats.total == 2
        assert gateway.stats.deterred_fraction() == 0.5

    def test_robots_enforced_for_full_user_agent_headers(self):
        """Real traffic carries full UA headers, not bare tokens; the
        gateway must reduce them to the group token before matching."""
        policy = RobotsPolicy.from_text(
            "User-agent: GPTBot\nDisallow: /\n\nUser-agent: *\nAllow: /\n"
        )
        gateway = DeterrenceGateway(server=make_server(), robots=policy)
        header = "Mozilla/5.0 AppleWebKit/537.36 (compatible; GPTBot/1.1)"
        assert gateway.handle(make_request(ua=header)).status == 403
        assert gateway.stats.robots_denied == 1
        browser = "Mozilla/5.0 (Windows NT 10.0) Chrome/120.0"
        assert gateway.handle(make_request(ua=browser)).status == 200

    def test_robots_file_itself_stays_fetchable(self):
        policy = RobotsPolicy.from_text("User-agent: *\nDisallow: /\n")
        gateway = DeterrenceGateway(server=make_server(), robots=policy)
        response = gateway.handle(make_request(path="/robots.txt"))
        assert response.status != 403
        assert gateway.stats.robots_denied == 0
