"""Unit tests for the columnar record backend.

Covers the struct-of-arrays :class:`RecordBatch` core, the batch
streaming helpers (``iter_batches`` / ``rechunk`` / ``rows_of``), the
batch IO round-trips across every storage format, and the schema's
``"" -> None`` normalization asymmetry that every read path must apply
identically (it is what makes fingerprints format-independent).

Parquet tests run only when pyarrow is installed (the ``[parquet]``
extra / the CI pyarrow leg); the missing-dependency error path runs
only when it is not, so the suite is green in both worlds.
"""

import json

import pytest

from repro.exceptions import LogSchemaError, MissingDependencyError
from repro.logs.columnar import (
    RecordBatch,
    iter_batches,
    rechunk,
    rows_of,
)
from repro.logs.io import (
    convert_log,
    read_batches,
    read_jsonl,
    write_batches,
    write_jsonl,
)
from repro.logs.parquet import HAVE_PYARROW
from repro.logs.schema import (
    CSV_COLUMNS,
    LogRecord,
    batch_to_records,
    records_to_batch,
)
from repro.pipeline.store import fingerprint_stream
from repro.uaparse.categories import BotCategory

needs_pyarrow = pytest.mark.skipif(
    not HAVE_PYARROW, reason="pyarrow not installed ([parquet] extra)"
)
needs_no_pyarrow = pytest.mark.skipif(
    HAVE_PYARROW, reason="pyarrow installed; error path unreachable"
)


def sample_records(count: int = 7) -> list[LogRecord]:
    records = []
    for index in range(count):
        enriched = index % 2 == 0
        records.append(
            LogRecord(
                useragent=f"Agent-{index % 3}/1.0",
                timestamp=1_739_500_000.0 + index * 1.5,
                ip_hash=f"ip-{index % 4:04x}",
                asn=8075 + index % 2,
                sitename=f"site-{index % 2}.university.edu",
                uri_path="/robots.txt" if index % 3 == 0 else f"/page/{index}",
                status_code=200,
                bytes_sent=100 + index,
                referer="https://example.com/" if index % 2 else None,
                bot_name="GPTBot" if enriched else None,
                bot_category=BotCategory.AI_DATA_SCRAPER if enriched else None,
                asn_name="MSFT" if enriched else None,
            )
        )
    return records


class TestRecordBatchCore:
    def test_round_trip_preserves_every_field(self):
        records = sample_records()
        batch = RecordBatch.from_records(records)
        assert len(batch) == len(records)
        assert batch.to_records() == records

    def test_converter_functions_match_methods(self):
        records = sample_records(3)
        assert batch_to_records(records_to_batch(records)) == records

    def test_bot_category_column_holds_labels_not_enums(self):
        batch = RecordBatch.from_records(sample_records(2))
        labels = list(batch.column("bot_category"))
        assert labels == [BotCategory.AI_DATA_SCRAPER.value, None]
        # ... and the row view re-materializes the enum.
        assert batch.row(0).bot_category is BotCategory.AI_DATA_SCRAPER
        assert batch.row(1).bot_category is None

    def test_from_columns_missing_column_raises(self):
        columns = {name: [] for name in CSV_COLUMNS if name != "asn"}
        with pytest.raises(LogSchemaError, match="missing column 'asn'"):
            RecordBatch.from_columns(columns)

    def test_from_columns_ragged_lengths_raise(self):
        batch = RecordBatch.from_records(sample_records(4))
        columns = {name: list(batch.column(name)) for name in CSV_COLUMNS}
        columns["uri_path"] = columns["uri_path"][:-1]
        with pytest.raises(LogSchemaError, match="ragged batch"):
            RecordBatch.from_columns(columns)

    def test_unknown_column_raises(self):
        with pytest.raises(LogSchemaError, match="unknown column"):
            RecordBatch().column("nope")

    def test_slice_and_take(self):
        records = sample_records(6)
        batch = RecordBatch.from_records(records)
        assert batch.slice(2, 5).to_records() == records[2:5]
        assert batch.take([5, 0, 3]).to_records() == [
            records[5],
            records[0],
            records[3],
        ]

    def test_extend_concatenates(self):
        records = sample_records(5)
        left = RecordBatch.from_records(records[:2])
        left.extend(RecordBatch.from_records(records[2:]))
        assert left.to_records() == records

    def test_equality_is_columnwise(self):
        records = sample_records(3)
        assert RecordBatch.from_records(records) == RecordBatch.from_records(
            records
        )
        assert RecordBatch.from_records(records) != RecordBatch.from_records(
            records[:2]
        )

    def test_empty_batch_is_falsy(self):
        assert not RecordBatch()
        assert RecordBatch.from_records(sample_records(1))


class TestBatchStreaming:
    def test_iter_batches_sizes(self):
        records = sample_records(7)
        batches = list(iter_batches(iter(records), 3))
        assert [len(b) for b in batches] == [3, 3, 1]
        assert list(rows_of(batches)) == records

    def test_iter_batches_rejects_bad_size(self):
        with pytest.raises(LogSchemaError):
            list(iter_batches([], 0))

    def test_rechunk_is_size_independent(self):
        records = sample_records(10)
        for source_size in (1, 3, 4, 10):
            batches = iter_batches(iter(records), source_size)
            resliced = list(rechunk(batches, 4))
            assert [len(b) for b in resliced] == [4, 4, 2]
            assert list(rows_of(resliced)) == records

    def test_rechunk_passes_exact_batches_through(self):
        batch = RecordBatch.from_records(sample_records(4))
        (out,) = rechunk([batch], 4)
        assert out is batch


class TestBatchIO:
    @pytest.mark.parametrize("format", ["jsonl", "csv"])
    def test_text_round_trip(self, tmp_path, format):
        records = sample_records()
        path = tmp_path / f"log.{format}"
        written = write_batches(iter_batches(iter(records), 3), path, format)
        assert written == len(records)
        loaded = list(rows_of(read_batches(path, format=format, batch_records=2)))
        assert loaded == records

    def test_batch_jsonl_matches_row_jsonl(self, tmp_path):
        """The columnar writer and the row writer emit identical bytes."""
        records = sample_records()
        row_path = tmp_path / "rows.jsonl"
        batch_path = tmp_path / "batches.jsonl"
        write_jsonl(records, row_path)
        write_batches(iter_batches(iter(records), 2), batch_path, "jsonl")
        assert batch_path.read_bytes() == row_path.read_bytes()

    def test_clf_round_trip_keeps_core_fields(self, tmp_path):
        records = sample_records(4)
        path = tmp_path / "access.log"
        assert write_batches(iter_batches(iter(records), 2), path, "clf") == 4
        loaded = list(
            rows_of(read_batches(path, format="clf", sitename="ignored"))
        )
        assert [r.uri_path for r in loaded] == [r.uri_path for r in records]
        assert [r.bytes_sent for r in loaded] == [r.bytes_sent for r in records]

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(LogSchemaError, match="unknown log format"):
            write_batches([], tmp_path / "x", format="orc")
        with pytest.raises(LogSchemaError, match="unknown log format"):
            list(read_batches(tmp_path / "x", format="orc"))

    def test_convert_jsonl_to_csv_and_back(self, tmp_path):
        records = sample_records()
        jsonl = tmp_path / "log.jsonl"
        csv_path = tmp_path / "log.csv"
        back = tmp_path / "back.jsonl"
        write_jsonl(records, jsonl)
        assert convert_log(jsonl, csv_path, "jsonl", "csv") == len(records)
        assert convert_log(csv_path, back, "csv", "jsonl") == len(records)
        assert list(read_jsonl(back)) == records

    def test_converted_corpus_fingerprints_identically(self, tmp_path):
        records = sample_records()
        jsonl = tmp_path / "log.jsonl"
        csv_path = tmp_path / "log.csv"
        write_jsonl(records, jsonl)
        convert_log(jsonl, csv_path, "jsonl", "csv")
        original = fingerprint_stream(read_jsonl(jsonl), chunk_records=3)
        converted = fingerprint_stream(
            rows_of(read_batches(csv_path, format="csv")), chunk_records=3
        )
        assert converted == original


class TestEmptyStringNormalization:
    """The schema's ``"" -> None`` asymmetry (from_dict normalizes).

    A record *written* with an empty-string referer reads back as
    ``None`` on every path — row readers, batch readers, and (when
    available) Parquet — so the normalized form is the canonical one
    and all formats fingerprint identically.
    """

    def test_from_dict_normalizes_empty_nullable_strings(self):
        row = sample_records(1)[0].to_dict()
        row.update(referer="", bot_name="", asn_name="", bot_category=None)
        loaded = LogRecord.from_dict(row)
        assert loaded.referer is None
        assert loaded.bot_name is None
        assert loaded.asn_name is None

    def test_jsonl_round_trip_canonicalizes(self, tmp_path):
        record = sample_records(1)[0]
        row = record.to_dict()
        row["referer"] = ""
        path = tmp_path / "log.jsonl"
        path.write_text(json.dumps(row) + "\n")
        (loaded,) = read_jsonl(path)
        assert loaded.referer is None
        (batch,) = read_batches(path)
        assert list(batch.column("referer")) == [None]

    def test_csv_none_and_empty_collapse_together(self, tmp_path):
        records = sample_records(2)
        assert records[0].referer is None
        path = tmp_path / "log.csv"
        write_batches(iter_batches(iter(records), 2), path, "csv")
        (batch,) = read_batches(path, format="csv")
        assert list(batch.column("referer")) == [
            None,
            "https://example.com/",
        ]
        assert list(batch.column("bot_name")) == ["GPTBot", None]


@needs_pyarrow
class TestParquet:
    def test_round_trip(self, tmp_path):
        records = sample_records()
        path = tmp_path / "log.parquet"
        written = write_batches(iter_batches(iter(records), 3), path, "parquet")
        assert written == len(records)
        loaded = list(
            rows_of(read_batches(path, format="parquet", batch_records=2))
        )
        assert loaded == records

    def test_row_group_per_batch_preserves_streaming(self, tmp_path):
        import pyarrow.parquet as pq

        records = sample_records(7)
        path = tmp_path / "log.parquet"
        write_batches(iter_batches(iter(records), 3), path, "parquet")
        assert pq.ParquetFile(str(path)).num_row_groups == 3

    def test_empty_string_referer_normalized_on_read(self, tmp_path):
        import pyarrow as pa
        import pyarrow.parquet as pq

        records = sample_records(1)
        path = tmp_path / "log.parquet"
        write_batches(iter_batches(iter(records), 1), path, "parquet")
        # Rewrite the file with an empty-string referer to simulate a
        # foreign producer that did not normalize.
        table = pq.read_table(str(path))
        index = table.schema.get_field_index("referer")
        table = table.set_column(
            index, table.schema.field(index), pa.array([""], type=pa.string())
        )
        pq.write_table(table, str(path))
        (batch,) = read_batches(path, format="parquet")
        assert list(batch.column("referer")) == [None]

    def test_convert_jsonl_to_parquet_round_trip(self, tmp_path):
        records = sample_records()
        jsonl = tmp_path / "log.jsonl"
        parquet = tmp_path / "log.parquet"
        back = tmp_path / "back.jsonl"
        write_jsonl(records, jsonl)
        assert convert_log(jsonl, parquet, "jsonl", "parquet") == len(records)
        assert convert_log(parquet, back, "parquet", "jsonl") == len(records)
        assert back.read_bytes() == jsonl.read_bytes()

    def test_parquet_fingerprints_match_jsonl(self, tmp_path):
        records = sample_records()
        jsonl = tmp_path / "log.jsonl"
        parquet = tmp_path / "log.parquet"
        write_jsonl(records, jsonl)
        convert_log(jsonl, parquet, "jsonl", "parquet")
        from repro.pipeline.store import fingerprint_batches

        assert fingerprint_batches(
            read_batches(parquet, format="parquet"), chunk_records=3
        ) == fingerprint_stream(read_jsonl(jsonl), chunk_records=3)


@needs_no_pyarrow
class TestParquetUnavailable:
    def test_write_raises_pointed_error(self, tmp_path):
        with pytest.raises(MissingDependencyError, match=r"\[parquet\]"):
            write_batches([], tmp_path / "x.parquet", "parquet")

    def test_read_raises_pointed_error(self, tmp_path):
        with pytest.raises(MissingDependencyError, match="pyarrow"):
            list(read_batches(tmp_path / "x.parquet", format="parquet"))

    def test_convert_raises_pointed_error(self, tmp_path):
        source = tmp_path / "log.jsonl"
        write_jsonl(sample_records(1), source)
        with pytest.raises(MissingDependencyError):
            convert_log(source, tmp_path / "x.parquet")
