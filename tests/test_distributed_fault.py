"""Fault injection: SIGKILLed workers and crashed coordinators.

The distributed executor's contract is that violence is survivable:

- a worker SIGKILLed mid-shard holds its lease only until the TTL
  runs out, then the shard is re-queued and re-run elsewhere;
- nothing a dead process leaves behind is half-published — every
  visible spool blob either verifies its checksum or is treated as
  absent;
- a coordinator killed mid-run (taking its local workers with it) can
  be restarted against the same spool and picks up where it left off,
  re-using every already-published result;
- after any of the above, the final output is byte-identical to an
  inline sequential run of the same payloads.

The hypothesis property drives the reap/requeue/recover path over
random payload sets and random "died holding a claim" subsets; the
two process tests deliver real SIGKILLs.
"""

from __future__ import annotations

import os
import pickle
import signal
import subprocess
import sys
import tempfile
import textwrap
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed import (
    FilesystemSpool,
    Lease,
    QueueCoordinator,
    run_sharded_queue,
    task_id_for,
)
from repro.distributed.queue import unpack_blob
from repro.distributed.worker import run_worker
from repro.pipeline.shard import _process_context

REPO_SRC = Path(__file__).resolve().parent.parent / "src"


def doubler(xs):
    return [x * 2 for x in xs]


def wait_while_poisoned(payload):
    """Block while the poison file exists, then double the values.

    The poison file is how the test freezes a worker "mid-shard" so a
    SIGKILL lands during execution, and how the re-run (poison
    removed) completes normally.
    """
    poison, values = payload
    while os.path.exists(poison):
        time.sleep(0.01)
    return [value * 2 for value in values]


def _wait_for(condition, timeout=15.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if condition():
            return True
        time.sleep(interval)
    return False


def _assert_no_half_published(spool_root: Path) -> None:
    """Every visible spool blob verifies; temp files stay invisible.

    ``atomic_write_bytes`` temp files end in ``.part`` and are never
    read by queue code; anything readable must pass its checksum.
    """
    for leaf in ("payloads", "results"):
        directory = spool_root / leaf
        if not directory.is_dir():
            continue
        for path in directory.iterdir():
            if path.name.endswith(".part"):
                continue  # in-flight temp: invisible to readers
            assert unpack_blob(path.read_bytes()) is not None, path


class TestSigkilledWorker:
    def test_lease_expires_shard_requeues_output_identical(self, tmp_path):
        spool_dir = tmp_path / "spool"
        spool = FilesystemSpool(spool_dir)
        poison = tmp_path / "poison"
        poison.touch()
        payloads = [(str(poison), [1, 2, 3]), (str(poison), [4, 5])]
        ttl = 0.4

        ids = []
        for index, payload in enumerate(payloads):
            task_id, blob = task_id_for("map", wait_while_poisoned, payload)
            spool.enqueue(task_id, "map", index, blob)
            ids.append(task_id)

        # A real worker process claims a task and blocks mid-shard...
        context = _process_context()
        victim = context.Process(
            target=run_worker,
            args=(spool,),
            kwargs={"ttl": ttl, "poll": 0.01, "max_idle": 30.0},
            daemon=True,
        )
        victim.start()
        try:
            assert _wait_for(lambda: spool.claimed_ids()), "never claimed"
            claimed = spool.claimed_ids()[0]
            assert _wait_for(
                lambda: Lease.read(spool, claimed) is not None
            ), "never leased"
            # ...and dies without warning.
            os.kill(victim.pid, signal.SIGKILL)
        finally:
            victim.join(timeout=10.0)
        assert victim.exitcode == -signal.SIGKILL

        # The lease stops being renewed and runs out.
        assert _wait_for(
            lambda: (lease := Lease.read(spool, claimed)) is None
            or lease.expired()
        ), "lease never expired"

        # Nothing the dead worker left behind is half-published.
        _assert_no_half_published(spool_dir)
        assert not spool.has_result(claimed)

        # The coordinator's reaper re-queues the orphaned shard.
        coordinator = QueueCoordinator(
            spool, lease_ttl=ttl, poll=0.01, timeout=30.0
        )
        attempts: dict[str, int] = {}
        assert _wait_for(
            lambda: (
                coordinator._reap(set(ids), set(), attempts, "map")
                or claimed not in spool.claimed_ids()
            )
        ), "shard never requeued"
        assert attempts.get(claimed) == 1

        # With the poison gone, a fresh run completes; output is
        # byte-identical to the inline sequential run.
        poison.unlink()
        out = run_sharded_queue(
            wait_while_poisoned,
            payloads,
            spool=spool_dir,
            workers=2,
            stage="map",
            lease_ttl=ttl,
            poll=0.01,
            timeout=60.0,
        )
        inline = [wait_while_poisoned(payload) for payload in payloads]
        assert pickle.dumps(out) == pickle.dumps(inline)
        _assert_no_half_published(spool_dir)


#: Helper module both coordinator processes import, so the pickled
#: worker reference (module.qualname) — and therefore every content-
#: keyed task id — is identical across the crash/restart boundary.
_FAULTMOD = textwrap.dedent(
    """
    import time

    PAYLOADS = [
        {"delay": 0.0, "values": [1, 2]},
        {"delay": 1.5, "values": [3]},
        {"delay": 1.5, "values": [4, 5, 6]},
        {"delay": 1.5, "values": [7]},
    ]


    def slow_task(payload):
        time.sleep(payload["delay"])
        return [value * 10 for value in payload["values"]]
    """
)

_COORDINATOR_SCRIPT = textwrap.dedent(
    """
    import distfaultmod
    from repro.distributed import run_sharded_queue

    run_sharded_queue(
        distfaultmod.slow_task,
        distfaultmod.PAYLOADS,
        spool={spool!r},
        workers=1,
        stage="map",
        lease_ttl=0.5,
        poll=0.01,
        timeout=120.0,
    )
    """
)


class TestCrashedCoordinator:
    def test_restarted_coordinator_resumes_and_matches_inline(
        self, tmp_path, monkeypatch
    ):
        (tmp_path / "distfaultmod.py").write_text(_FAULTMOD)
        monkeypatch.syspath_prepend(str(tmp_path))
        import distfaultmod  # noqa: PLC0415 - written just above

        spool_dir = tmp_path / "spool"
        results = spool_dir / "results"

        # First coordinator runs in its own process group so SIGKILL
        # takes out its local worker too ("the host died").
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_SRC), str(tmp_path), env.get("PYTHONPATH", "")]
        )
        child_log = tmp_path / "coordinator.log"
        with open(child_log, "wb") as log_handle:
            first = subprocess.Popen(
                [
                    sys.executable,
                    "-c",
                    _COORDINATOR_SCRIPT.format(spool=str(spool_dir)),
                ],
                env=env,
                start_new_session=True,
                stdout=log_handle,
                stderr=log_handle,
            )
        try:
            spool = FilesystemSpool(spool_dir)

            def _published() -> bool:
                return results.is_dir() and any(
                    spool.has_result(path.name) for path in results.iterdir()
                )

            # Exit before publishing = the child crashed on startup;
            # surface its log instead of waiting out the timeout.
            _wait_for(
                lambda: _published() or first.poll() is not None,
                timeout=120.0,
            )
            assert _published(), (
                f"no result ever published; coordinator exit code "
                f"{first.poll()}, log:\n{child_log.read_text()}"
            )
        finally:
            try:
                os.killpg(first.pid, signal.SIGKILL)
            except ProcessLookupError:
                # The child won the race and finished everything; the
                # restart below then resumes from a *complete* spool,
                # which the same assertions still cover.
                pass
            first.wait(timeout=30.0)

        _assert_no_half_published(spool_dir)
        published = {
            path.name: path.stat().st_mtime_ns
            for path in results.iterdir()
            if spool.has_result(path.name)
        }
        assert published  # mid-run: something done, run killed anyway

        # Restarted coordinator: same module path, same payloads ->
        # same task ids; completes and matches the inline run.
        out = run_sharded_queue(
            distfaultmod.slow_task,
            distfaultmod.PAYLOADS,
            spool=spool_dir,
            workers=1,
            stage="map",
            lease_ttl=0.5,
            poll=0.01,
            timeout=120.0,
        )
        inline = [
            distfaultmod.slow_task(payload)
            for payload in distfaultmod.PAYLOADS
        ]
        assert pickle.dumps(out) == pickle.dumps(inline)

        # Resume, not redo: blobs published before the crash were
        # served as-is, never rewritten.
        for name, mtime_ns in published.items():
            assert (results / name).stat().st_mtime_ns == mtime_ns
        _assert_no_half_published(spool_dir)


# -- reap/recover property -------------------------------------------------


@settings(max_examples=10, deadline=None)
@given(
    payloads=st.lists(
        st.lists(st.integers(min_value=-100, max_value=100), max_size=5),
        min_size=1,
        max_size=6,
    ),
    dead_claims=st.sets(st.integers(min_value=0, max_value=5), max_size=3),
)
def test_tasks_orphaned_by_dead_workers_recover(payloads, dead_claims):
    """Tasks claimed by workers that died (expired leases) are reaped,
    re-queued, and re-run; the final output matches inline exactly."""
    with tempfile.TemporaryDirectory() as tmp:
        spool = FilesystemSpool(Path(tmp) / "spool")
        ids = []
        for index, payload in enumerate(payloads):
            task_id, blob = task_id_for("map", doubler, payload)
            spool.enqueue(task_id, "map", index, blob)
            ids.append(task_id)
        # A "worker" claims some tasks and dies: claimed state plus an
        # already-expired lease, no result, no ack.
        for index in sorted(dead_claims):
            victim = ids[index % len(ids)]
            if victim not in spool.claimed_ids():
                task = spool.claim("dead-worker")
                if task is None:
                    break
                spool.write_lease(
                    task.id,
                    {"task": task.id, "worker": "dead-worker", "expires": 0.0},
                )
        out = run_sharded_queue(
            doubler,
            payloads,
            spool=Path(tmp) / "spool",
            workers=1,
            stage="map",
            lease_ttl=0.3,
            poll=0.01,
            timeout=60.0,
        )
        assert pickle.dumps(out) == pickle.dumps(
            [doubler(payload) for payload in payloads]
        )


if __name__ == "__main__":  # pragma: no cover - debugging aid
    sys.exit(pytest.main([__file__, "-v"]))
