"""Tests for the package's public API surface."""

import repro


class TestTopLevelApi:
    def test_version_string(self):
        major, *_ = repro.__version__.split(".")
        assert major.isdigit()

    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_path_works(self):
        """The README's three-line quickstart must execute as written."""
        dataset = repro.run_study(scale=0.003, seed=1)
        analysis = repro.StudyAnalysis(dataset)
        result = repro.run_experiment("T4", analysis)
        assert "Table 4" in result.rendered

    def test_robots_policy_reachable(self):
        policy = repro.RobotsPolicy.from_text("User-agent: *\nDisallow: /x\n")
        assert not policy.can_fetch("bot", "/x/y")

    def test_diff_reachable(self):
        diff = repro.diff_robots(
            "User-agent: *\nAllow: /\n", "User-agent: *\nDisallow: /\n"
        )
        assert diff.is_stricter

    def test_observatory_reachable(self):
        observatory = repro.RobotsObservatory()
        observatory.record("s", 0.0, "User-agent: *\nAllow: /\n")
        assert observatory.latest("s") is not None

    def test_subpackages_import_cleanly(self):
        import repro.analysis
        import repro.asn
        import repro.bots
        import repro.deterrence
        import repro.logs
        import repro.reporting
        import repro.robots
        import repro.simulation
        import repro.uaparse
        import repro.web

        assert repro.analysis.Directive is repro.Directive
