"""Unit tests for honeypot-based spoof confirmation."""

from repro.analysis.honeypot import (
    HoneypotVerdict,
    confirm_spoofers,
    confirmation_rate,
    is_trap_path,
    trap_hits,
)
from repro.analysis.spoofing import find_spoofed_bots
from repro.logs.schema import LogRecord


def record(asn: int, path: str = "/a", bot: str = "Googlebot") -> LogRecord:
    return LogRecord(
        useragent=f"{bot}/1.0",
        timestamp=0.0,
        ip_hash="ip",
        asn=asn,
        sitename="s",
        uri_path=path,
        status_code=200,
        bytes_sent=1,
        bot_name=bot,
        asn_name=f"AS{asn}",
    )


class TestTrapPath:
    def test_secure_paths_are_traps(self):
        assert is_trap_path("/secure/area-001")
        assert is_trap_path("/secure/x?y=1")

    def test_normal_paths_are_not(self):
        assert not is_trap_path("/news/a")
        assert not is_trap_path("/robots.txt")
        assert not is_trap_path("/securely-named-page")


class TestTrapHits:
    def test_counts_per_bot_and_asn(self):
        records = [
            record(1, "/secure/a"),
            record(1, "/secure/b"),
            record(2, "/secure/a"),
            record(1, "/news/x"),
        ]
        hits = trap_hits(records)
        assert hits["Googlebot"].by_asn == {1: 2, 2: 1}
        assert hits["Googlebot"].total == 3

    def test_anonymous_traffic_ignored(self):
        anonymous = LogRecord(
            useragent="Mozilla/5.0",
            timestamp=0.0,
            ip_hash="ip",
            asn=1,
            sitename="s",
            uri_path="/secure/a",
            status_code=200,
            bytes_sent=1,
        )
        assert trap_hits([anonymous]) == {}


class TestConfirmSpoofers:
    def _records(self, spoofer_hits_trap: bool):
        # Dominant ASN 1 (clean), minority ASN 2 (flagged).
        records = [record(1) for _ in range(95)]
        minority_path = "/secure/a" if spoofer_hits_trap else "/news/x"
        records += [record(2, minority_path) for _ in range(5)]
        return records

    def test_confirmed_when_minority_hits_trap(self):
        records = self._records(spoofer_hits_trap=True)
        findings = find_spoofed_bots(records)
        verdicts = confirm_spoofers(records, findings)
        verdict = verdicts["Googlebot"]
        assert verdict.confirmed
        assert verdict.confirmed_asns == (2,)
        assert verdict.suspected_asns == ()
        assert verdict.dominant_trap_hits == 0

    def test_suspected_only_without_trap_hit(self):
        records = self._records(spoofer_hits_trap=False)
        findings = find_spoofed_bots(records)
        verdicts = confirm_spoofers(records, findings)
        verdict = verdicts["Googlebot"]
        assert not verdict.confirmed
        assert verdict.suspected_asns == (2,)

    def test_dominant_trap_hits_reported(self):
        records = [record(1, "/secure/a") for _ in range(95)]
        records += [record(2) for _ in range(5)]
        findings = find_spoofed_bots(records)
        verdicts = confirm_spoofers(records, findings)
        assert verdicts["Googlebot"].dominant_trap_hits == 95

    def test_confirmation_rate(self):
        assert confirmation_rate({}) == 0.0
        verdicts = {
            "a": HoneypotVerdict("a", (1,), (), 0),
            "b": HoneypotVerdict("b", (), (2,), 0),
        }
        assert confirmation_rate(verdicts) == 0.5


class TestEndToEnd:
    def test_simulated_spoofers_confirmed(self, quick_analysis):
        """Spoofed shadow agents probe traps; some flagged bots must be
        honeypot-confirmed in the simulated study."""
        verdicts = confirm_spoofers(
            quick_analysis.records, quick_analysis.spoof_findings
        )
        assert verdicts
        assert confirmation_rate(verdicts) > 0.0
