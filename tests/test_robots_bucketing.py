"""First-segment bucketing: equivalence with the unbucketed engine.

``CompiledRuleSet`` may index rules by their first literal path
segment (skipping non-candidate rules for large corpora).  The
optimization must be invisible: for every rule set and every path, the
bucketed engine, the unbucketed engine, and the legacy full scan must
return the same verdict and the same winning rule.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.robots.builder import RobotsBuilder
from repro.robots.compiled import (
    BUCKET_THRESHOLD,
    CompiledRuleSet,
    _bucket_key,
    _first_segment,
)
from repro.robots.matcher import evaluate_rules
from repro.robots.model import Rule, RuleType

SEGMENTS = ("a", "b", "ab", "x", "news", "n")
TAILS = ("", "/", "/sub", "/sub/page", ".json", "-1")

path_strategy = st.builds(
    lambda seg, tail: f"/{seg}{tail}",
    st.sampled_from(SEGMENTS),
    st.sampled_from(TAILS),
)

pattern_strategy = st.one_of(
    path_strategy,
    st.builds(
        lambda seg, tail, anchor: f"/{seg}{tail}{anchor}",
        st.sampled_from(SEGMENTS),
        st.sampled_from(TAILS),
        st.sampled_from(("$", "")),
    ),
    st.builds(
        lambda seg, wild, tail: f"/{seg}{wild}{tail}",
        st.sampled_from(SEGMENTS),
        st.sampled_from(("*", "/*", "*/")),
        st.sampled_from(("", "x", "x$")),
    ),
    st.sampled_from(("/", "*", "/*", "*.json$", "")),
)

rule_strategy = st.builds(
    lambda kind, path: Rule(type=kind, path=path),
    st.sampled_from((RuleType.ALLOW, RuleType.DISALLOW)),
    pattern_strategy,
)


@settings(max_examples=200, deadline=None)
@given(
    st.lists(rule_strategy, min_size=0, max_size=40),
    st.lists(path_strategy, min_size=1, max_size=10),
)
def test_bucketed_equals_unbucketed_and_legacy(rules, paths):
    bucketed = CompiledRuleSet(rules, bucket_threshold=0)
    unbucketed = CompiledRuleSet(rules, bucket_threshold=10**9)
    for path in paths:
        want = unbucketed.decide(path)
        got = bucketed.decide(path)
        assert got.allowed == want.allowed
        assert got.rule is want.rule
        legacy = evaluate_rules(list(rules), path)
        assert got.allowed == legacy.allowed


@settings(max_examples=100, deadline=None)
@given(
    st.lists(rule_strategy, min_size=0, max_size=40),
    st.sampled_from(
        ("/", "", "/a", "/ab/sub", "/%41b", "/café", "*odd", "//double")
    ),
)
def test_bucketed_agrees_on_edge_paths(rules, path):
    bucketed = CompiledRuleSet(rules, bucket_threshold=0)
    unbucketed = CompiledRuleSet(rules, bucket_threshold=10**9)
    assert bucketed.allows(path) == unbucketed.allows(path)


class TestBucketKeys:
    def _compiled(self, pattern: str):
        ruleset = CompiledRuleSet(
            [Rule(type=RuleType.DISALLOW, path=pattern)], bucket_threshold=10**9
        )
        (entry,) = ruleset.rules
        return entry

    def test_complete_segment_is_bucketed(self):
        assert _bucket_key(self._compiled("/news/archive")) == "news"

    def test_incomplete_prefix_stays_generic(self):
        # "/foo" also matches "/foobar/x" — cannot be pinned to "foo".
        assert _bucket_key(self._compiled("/foo")) is None

    def test_anchored_literal_is_bucketed(self):
        assert _bucket_key(self._compiled("/foo$")) == "foo"

    def test_wildcard_in_first_segment_stays_generic(self):
        assert _bucket_key(self._compiled("/fo*/bar")) is None

    def test_wildcard_after_complete_segment_is_bucketed(self):
        assert _bucket_key(self._compiled("/news/*.json$")) == "news"

    def test_leading_wildcard_stays_generic(self):
        assert _bucket_key(self._compiled("*private")) is None

    def test_first_segment_extraction(self):
        assert _first_segment("/news/archive") == "news"
        assert _first_segment("/news") == "news"
        assert _first_segment("/") == ""
        assert _first_segment("//x") == ""


class TestActivation:
    def _hundred_rule_set(self) -> list[Rule]:
        builder = RobotsBuilder().group("*")
        for section in range(20):
            for page in range(5):
                builder.disallow(f"/section-{section:02d}/private-{page}")
        robots = builder.build()
        return [rule for group in robots.groups for rule in group.rules]

    def test_default_threshold_activates_on_large_sets(self):
        rules = self._hundred_rule_set()
        assert len(rules) >= BUCKET_THRESHOLD
        ruleset = CompiledRuleSet(rules)
        assert ruleset._buckets is not None
        assert ruleset.allows("/section-03/private-2") is False
        assert ruleset.allows("/section-03/public") is True
        assert ruleset.allows("/elsewhere") is True

    def test_small_sets_stay_linear(self):
        ruleset = CompiledRuleSet(
            [Rule(type=RuleType.DISALLOW, path="/a/b")]
        )
        assert ruleset._buckets is None

    def test_bucket_tables_are_priority_supersets(self):
        rules = self._hundred_rule_set()
        rules.append(Rule(type=RuleType.ALLOW, path="/section-03/private-1x"))
        ruleset = CompiledRuleSet(rules)
        assert ruleset._buckets is not None
        # The more specific Allow must still win inside its bucket.
        assert ruleset.allows("/section-03/private-1x") is True
        assert ruleset.allows("/section-03/private-1") is False
