"""Unit tests for per-bot baseline-vs-directive comparisons."""

from repro.analysis.compliance import Directive
from repro.analysis.perbot import (
    compare_bot,
    exempt_canonical_names,
    per_bot_results,
)
from repro.logs.schema import LogRecord
from repro.uaparse.categories import BotCategory


def record(
    timestamp: float,
    path: str = "/a",
    ua: str = "TestBot/1.0",
    bot: str | None = "TestBot",
    ip: str = "ip1",
    asn: int = 1,
) -> LogRecord:
    return LogRecord(
        useragent=ua,
        timestamp=timestamp,
        ip_hash=ip,
        asn=asn,
        sitename="s",
        uri_path=path,
        status_code=200,
        bytes_sent=1,
        bot_name=bot,
        bot_category=BotCategory.OTHER,
    )


class TestCompareBot:
    def test_disallow_shift_detected(self):
        baseline = [record(i, path="/a") for i in range(50)]
        treatment = [record(i, path="/robots.txt") for i in range(50)]
        result = compare_bot("TestBot", Directive.DISALLOW_ALL, baseline, treatment)
        assert result.baseline_ratio == 0.0
        assert result.treatment_ratio == 1.0
        assert result.shift == 1.0
        assert result.test.significant
        assert result.checked_robots

    def test_no_shift_not_significant(self):
        baseline = [record(i, path="/a") for i in range(50)]
        treatment = [record(i + 100, path="/a") for i in range(50)]
        result = compare_bot("TestBot", Directive.DISALLOW_ALL, baseline, treatment)
        assert not result.test.significant
        assert not result.checked_robots


class TestExemptNames:
    def test_exempt_covers_google_family(self):
        exempt = exempt_canonical_names()
        assert "Googlebot" in exempt
        assert "Googlebot-Image" in exempt
        assert "bingbot" in exempt
        assert "Baiduspider" in exempt
        assert "DuckDuckBot" in exempt
        assert "ia_archiver" in exempt

    def test_yandex_not_exempt(self):
        assert "Yandex.com/bots" not in exempt_canonical_names()

    def test_gptbot_not_exempt(self):
        assert "GPTBot" not in exempt_canonical_names()


class TestPerBotResults:
    def _windows(self, bot: str, compliant_v3: bool):
        baseline = [record(i, bot=bot, ua=f"{bot}/1.0") for i in range(20)]
        path = "/robots.txt" if compliant_v3 else "/a"
        directive_records = {
            Directive.CRAWL_DELAY: [
                record(40 * i + 1000, bot=bot, ua=f"{bot}/1.0") for i in range(20)
            ],
            Directive.ENDPOINT: [
                record(i + 5000, path="/page-data/x", bot=bot, ua=f"{bot}/1.0")
                for i in range(20)
            ],
            Directive.DISALLOW_ALL: [
                record(i + 9000, path=path, bot=bot, ua=f"{bot}/1.0")
                for i in range(20)
            ],
        }
        return baseline, directive_records

    def test_full_pipeline(self):
        baseline, directive_records = self._windows("TestBot", compliant_v3=True)
        results = per_bot_results(baseline, directive_records)
        assert "TestBot" in results
        v3 = results["TestBot"][Directive.DISALLOW_ALL]
        assert v3.treatment_ratio == 1.0
        assert v3.test.significant

    def test_min_access_filter(self):
        baseline, directive_records = self._windows("TestBot", compliant_v3=True)
        directive_records[Directive.ENDPOINT] = directive_records[
            Directive.ENDPOINT
        ][:3]
        results = per_bot_results(baseline, directive_records)
        assert "TestBot" not in results

    def test_exempt_bot_excluded(self):
        baseline, directive_records = self._windows("Googlebot", compliant_v3=True)
        results = per_bot_results(baseline, directive_records)
        assert "Googlebot" not in results

    def test_exempt_inclusion_toggle(self):
        baseline, directive_records = self._windows("Googlebot", compliant_v3=True)
        results = per_bot_results(
            baseline, directive_records, exclude_exempt=False
        )
        assert "Googlebot" in results

    def test_spoofed_minority_records_excluded(self):
        baseline, directive_records = self._windows("TestBot", compliant_v3=True)
        # Minority-ASN noncompliant traffic would dilute the ratio if
        # not excluded by the spoofing partition.
        spoof = [
            record(i + 9000, path="/a", bot="TestBot", ua="TestBot/1.0", asn=99)
            for i in range(2)
        ]
        directive_records[Directive.DISALLOW_ALL].extend(spoof)
        # Build a dominant baseline so the heuristic flags ASN 99.
        results = per_bot_results(baseline, directive_records)
        v3 = results["TestBot"][Directive.DISALLOW_ALL]
        assert v3.treatment_ratio == 1.0
