"""Unit tests for the RobotsBuilder fluent API."""

import pytest

from repro.robots.builder import RobotsBuilder


class TestBuilder:
    def test_chained_construction(self):
        robots = (
            RobotsBuilder()
            .group("Googlebot")
            .allow("/")
            .crawl_delay(15)
            .group("*")
            .allow("/allowed-data/")
            .disallow("/restricted-data/")
            .sitemap("https://x.example/sitemap.xml")
            .build()
        )
        assert len(robots.groups) == 2
        assert robots.groups[0].crawl_delay == 15.0
        assert robots.sitemaps == ["https://x.example/sitemap.xml"]

    def test_multiple_agents_per_group(self):
        robots = RobotsBuilder().group("a", "b").disallow("/x").build()
        assert robots.groups[0].user_agents == ["a", "b"]

    def test_agent_appends_to_current_group(self):
        robots = RobotsBuilder().group("a").agent("b").disallow("/x").build()
        assert robots.groups[0].user_agents == ["a", "b"]

    def test_rule_before_group_raises(self):
        with pytest.raises(ValueError, match="open a group"):
            RobotsBuilder().allow("/x")

    def test_empty_group_call_raises(self):
        with pytest.raises(ValueError):
            RobotsBuilder().group()

    def test_invalid_agent_token_raises(self):
        with pytest.raises(ValueError):
            RobotsBuilder().group(" padded ")
        with pytest.raises(ValueError):
            RobotsBuilder().group("")

    def test_negative_delay_raises(self):
        with pytest.raises(ValueError):
            RobotsBuilder().group("*").crawl_delay(-1)

    def test_empty_sitemap_raises(self):
        with pytest.raises(ValueError):
            RobotsBuilder().sitemap("")

    def test_build_text_parses_back(self):
        from repro.robots.parser import parse

        text = (
            RobotsBuilder()
            .group("*")
            .disallow("/private")
            .crawl_delay(30)
            .build_text()
        )
        robots = parse(text)
        assert robots.groups[0].crawl_delay == 30.0
        assert robots.groups[0].rules[0].path == "/private"

    def test_build_policy_directly_usable(self):
        policy = RobotsBuilder().group("*").disallow("/nope").build_policy()
        assert not policy.can_fetch("any", "/nope/x")
        assert policy.can_fetch("any", "/yes")

    def test_build_returns_independent_copies(self):
        builder = RobotsBuilder().group("*").disallow("/a")
        first = builder.build()
        builder.disallow("/b")
        second = builder.build()
        assert len(first.groups[0].rules) == 1
        assert len(second.groups[0].rules) == 2

    def test_integer_delay_rendering(self):
        text = RobotsBuilder().group("*").crawl_delay(30.0).build_text()
        assert "Crawl-delay: 30" in text
        assert "30.0" not in text
