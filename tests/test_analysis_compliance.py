"""Unit tests for the paper's three compliance metrics (§4.2)."""

from repro.analysis.compliance import (
    Directive,
    checked_robots,
    crawl_delay_sample,
    disallow_sample,
    endpoint_sample,
    sample_for,
    tau_groups,
)
from repro.logs.schema import LogRecord


def record(
    timestamp: float,
    path: str = "/a",
    ip: str = "ip1",
    ua: str = "Bot/1.0",
    asn: int = 1,
) -> LogRecord:
    return LogRecord(
        useragent=ua,
        timestamp=timestamp,
        ip_hash=ip,
        asn=asn,
        sitename="s",
        uri_path=path,
        status_code=200,
        bytes_sent=1,
    )


class TestTauGroups:
    def test_stratification(self):
        records = [
            record(0, ip="a"),
            record(1, ip="a", asn=2),
            record(2, ip="b"),
        ]
        groups = tau_groups(records)
        assert len(groups) == 3

    def test_sorted_within_group(self):
        groups = tau_groups([record(5), record(1), record(3)])
        (group,) = groups.values()
        assert [r.timestamp for r in group] == [1, 3, 5]


class TestCrawlDelay:
    def test_all_deltas_compliant(self):
        sample = crawl_delay_sample([record(0), record(40), record(90)])
        assert sample.successes == 2 and sample.trials == 2

    def test_no_deltas_compliant(self):
        sample = crawl_delay_sample([record(0), record(5), record(15)])
        assert sample.successes == 0 and sample.trials == 2

    def test_threshold_boundary_inclusive(self):
        sample = crawl_delay_sample([record(0), record(30)])
        assert sample.successes == 1

    def test_just_below_threshold(self):
        sample = crawl_delay_sample([record(0), record(29.9)])
        assert sample.successes == 0

    def test_single_access_counts_compliant(self):
        """The paper: a tuple with one access counts as compliant."""
        sample = crawl_delay_sample([record(0)])
        assert sample.successes == 1 and sample.trials == 1

    def test_deltas_computed_per_tau_tuple(self):
        # Two IPs interleaved: deltas never cross tuples.
        records = [
            record(0, ip="a"),
            record(1, ip="b"),
            record(40, ip="a"),
            record(45, ip="b"),
        ]
        sample = crawl_delay_sample(records)
        # a: delta 40 (ok); b: delta 44 (ok).
        assert sample.successes == 2 and sample.trials == 2

    def test_custom_threshold(self):
        sample = crawl_delay_sample(
            [record(0), record(10)], threshold_seconds=5.0
        )
        assert sample.successes == 1


class TestEndpoint:
    def test_page_data_counts(self):
        sample = endpoint_sample(
            [record(0, path="/page-data/x/page-data.json"), record(1, path="/a")]
        )
        assert sample.successes == 1 and sample.trials == 2

    def test_robots_counts_as_compliant(self):
        sample = endpoint_sample([record(0, path="/robots.txt")])
        assert sample.successes == 1

    def test_all_other_paths_noncompliant(self):
        sample = endpoint_sample([record(0, path="/news/a"), record(1, path="/")])
        assert sample.successes == 0


class TestDisallow:
    def test_only_robots_compliant(self):
        sample = disallow_sample(
            [
                record(0, path="/robots.txt"),
                record(1, path="/page-data/x"),
                record(2, path="/a"),
            ]
        )
        assert sample.successes == 1 and sample.trials == 3

    def test_robots_with_query(self):
        sample = disallow_sample([record(0, path="/robots.txt?x=1")])
        assert sample.successes == 1


class TestDispatch:
    def test_sample_for_each_directive(self):
        records = [record(0, path="/robots.txt"), record(40, path="/a")]
        assert sample_for(Directive.CRAWL_DELAY, records).trials == 1
        assert sample_for(Directive.ENDPOINT, records).successes == 1
        assert sample_for(Directive.DISALLOW_ALL, records).successes == 1

    def test_checked_robots(self):
        assert checked_robots([record(0, path="/robots.txt")])
        assert not checked_robots([record(0, path="/a")])
