"""Unit tests for the dataset-overview analyses (Tables 2-3, Figures 2-4)."""

from repro.analysis.overview import (
    bytes_cdf_by_category,
    category_session_counts,
    daily_sessions_by_category,
    dataset_overview,
    overview_row,
    top_bots,
)
from repro.logs.schema import LogRecord
from repro.uaparse.categories import BotCategory

DAY = 86_400.0
BASE = 1_739_318_400.0  # 2025-02-12T00:00:00Z


def record(
    timestamp: float,
    ip: str = "ip1",
    ua: str = "GPTBot/1.2",
    bot: str | None = "GPTBot",
    category: BotCategory | None = BotCategory.AI_DATA_SCRAPER,
    nbytes: int = 1000,
    path: str = "/a",
    asn: int = 1,
) -> LogRecord:
    return LogRecord(
        useragent=ua,
        timestamp=timestamp,
        ip_hash=ip,
        asn=asn,
        sitename="s.example",
        uri_path=path,
        status_code=200,
        bytes_sent=nbytes,
        bot_name=bot,
        bot_category=category,
    )


def browser(timestamp: float, ip: str = "human") -> LogRecord:
    return record(
        timestamp, ip=ip, ua="Mozilla/5.0 Chrome", bot=None, category=None
    )


class TestOverviewRow:
    def test_counts(self):
        records = [
            record(BASE, ip="a", path="/x"),
            record(BASE + 10, ip="a", path="/y"),
            browser(BASE + 20, ip="b"),
        ]
        row = overview_row(records)
        assert row.unique_ip_hashes == 2
        assert row.unique_user_agents == 2
        assert row.total_bytes == 3000
        assert row.unique_page_visits == 3  # /x, /y, /a
        assert row.total_page_visits == 2  # two sessions
        assert row.avg_bytes_per_session == 1500.0

    def test_empty(self):
        row = overview_row([])
        assert row.total_page_visits == 0
        assert row.avg_bytes_per_session == 0.0


class TestDatasetOverview:
    def test_two_rows(self):
        records = [record(BASE), browser(BASE + 5)]
        rows = dataset_overview(records)
        assert set(rows) == {"All data", "Known bots"}
        assert rows["Known bots"].unique_ip_hashes == 1
        assert rows["All data"].unique_ip_hashes == 2


class TestTopBots:
    def test_ranking_by_accesses(self):
        records = [record(BASE + i, bot="GPTBot") for i in range(10)]
        records += [
            record(BASE + i, ip="c", ua="ClaudeBot/1.0", bot="ClaudeBot")
            for i in range(5)
        ]
        records += [browser(BASE + i) for i in range(5)]
        activity = top_bots(records)
        assert activity[0].bot_name == "GPTBot"
        assert activity[0].hits == 10
        assert activity[0].traffic_share == 0.5
        assert activity[1].bot_name == "ClaudeBot"

    def test_count_limit(self):
        records = []
        for index in range(30):
            records.append(
                record(BASE, ip=f"ip{index}", ua=f"Bot{index}/1", bot=f"Bot{index}")
            )
        assert len(top_bots(records, count=20)) == 20

    def test_gigabytes(self):
        records = [record(BASE, nbytes=2_000_000_000)]
        assert abs(top_bots(records)[0].gigabytes - 2.0) < 1e-9


class TestCategorySessions:
    def test_counts_by_category(self):
        records = [record(BASE)]
        records += [
            record(
                BASE + 10_000,
                ip="x",
                ua="AhrefsBot/7",
                bot="AhrefsBot",
                category=BotCategory.SEO_CRAWLER,
            )
        ]
        counts = category_session_counts(records)
        assert counts[BotCategory.AI_DATA_SCRAPER] == 1
        assert counts[BotCategory.SEO_CRAWLER] == 1

    def test_anonymous_excluded(self):
        assert category_session_counts([browser(BASE)]) == {}


class TestDailySessions:
    def test_per_day_series(self):
        records = [record(BASE), record(BASE + DAY, ip="z")]
        series = daily_sessions_by_category(records, top=5)
        days = series[BotCategory.AI_DATA_SCRAPER]
        assert days == {"2025-02-12": 1, "2025-02-13": 1}

    def test_top_limit(self):
        records = []
        categories = list(BotCategory)[:7]
        for index, category in enumerate(categories):
            records.append(
                record(
                    BASE,
                    ip=f"ip{index}",
                    ua=f"B{index}/1",
                    bot=f"B{index}",
                    category=category,
                )
            )
        assert len(daily_sessions_by_category(records, top=3)) == 3


class TestBytesCdf:
    def test_cdf_reaches_one(self):
        records = [
            record(BASE, nbytes=100),
            record(BASE + DAY, nbytes=300),
            record(BASE + 2 * DAY, nbytes=600),
        ]
        series = bytes_cdf_by_category(records, top=1)
        points = series[BotCategory.AI_DATA_SCRAPER]
        assert points[-1][1] == 1.0
        assert points[0][1] == 0.1  # 100 / 1000

    def test_monotone(self):
        records = [record(BASE + i * DAY, nbytes=i + 1) for i in range(10)]
        series = bytes_cdf_by_category(records)
        values = [v for _, v in series[BotCategory.AI_DATA_SCRAPER]]
        assert values == sorted(values)
