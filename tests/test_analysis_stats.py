"""Unit and property tests for the statistics module."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.stats import (
    ALPHA,
    MIN_TRIALS,
    ProportionSample,
    two_proportion_z_test,
    weighted_average,
    wilson_interval,
)


class TestProportionSample:
    def test_proportion(self):
        assert ProportionSample(3, 10).proportion == 0.3

    def test_empty_sample(self):
        assert ProportionSample(0, 0).proportion == 0.0

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            ProportionSample(5, 3)
        with pytest.raises(ValueError):
            ProportionSample(-1, 3)


class TestZTest:
    def test_obvious_increase_significant(self):
        baseline = ProportionSample(10, 100)
        treatment = ProportionSample(90, 100)
        result = two_proportion_z_test(baseline, treatment)
        assert result.valid
        assert result.z > 0
        assert result.significant

    def test_obvious_decrease_negative_z(self):
        result = two_proportion_z_test(
            ProportionSample(90, 100), ProportionSample(10, 100)
        )
        assert result.z < 0
        assert result.significant

    def test_no_change_not_significant(self):
        result = two_proportion_z_test(
            ProportionSample(50, 100), ProportionSample(51, 100)
        )
        assert not result.significant

    def test_small_sample_invalid(self):
        result = two_proportion_z_test(
            ProportionSample(1, MIN_TRIALS - 1), ProportionSample(50, 100)
        )
        assert not result.valid
        assert not result.significant

    def test_degenerate_identical_proportions(self):
        result = two_proportion_z_test(
            ProportionSample(10, 10), ProportionSample(20, 20)
        )
        assert result.valid
        assert result.p_value == 1.0

    def test_paper_magnitude_example(self):
        """GPTBot disallow: ~0.02 -> 1.0 with hundreds of accesses gives
        an enormous z, like Table 10's 24.20."""
        result = two_proportion_z_test(
            ProportionSample(6, 300), ProportionSample(300, 300)
        )
        assert result.z > 15

    @given(
        st.integers(5, 200),
        st.integers(5, 200),
        st.integers(0, 200),
        st.integers(0, 200),
    )
    def test_antisymmetry(self, n_a, n_b, k_a, k_b):
        a = ProportionSample(min(k_a, n_a), n_a)
        b = ProportionSample(min(k_b, n_b), n_b)
        forward = two_proportion_z_test(a, b)
        backward = two_proportion_z_test(b, a)
        assert forward.z == pytest.approx(-backward.z, abs=1e-12)
        assert forward.p_value == pytest.approx(backward.p_value, abs=1e-12)

    @given(st.integers(5, 500), st.integers(0, 500))
    def test_p_value_in_range(self, n, k):
        sample = ProportionSample(min(k, n), n)
        other = ProportionSample(n // 2, n)
        result = two_proportion_z_test(sample, other)
        if result.valid:
            assert 0.0 <= result.p_value <= 1.0


class TestWeightedAverage:
    def test_simple(self):
        assert weighted_average([1.0, 0.0], [3.0, 1.0]) == 0.75

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            weighted_average([1.0], [1.0, 2.0])

    def test_zero_weights(self):
        with pytest.raises(ValueError):
            weighted_average([1.0], [0.0])

    @given(
        st.lists(st.floats(0, 1), min_size=1, max_size=10),
        st.lists(st.floats(0.01, 100), min_size=1, max_size=10),
    )
    def test_bounded_by_extremes(self, values, weights):
        n = min(len(values), len(weights))
        values, weights = values[:n], weights[:n]
        average = weighted_average(values, weights)
        assert min(values) - 1e-9 <= average <= max(values) + 1e-9


class TestWilson:
    def test_contains_point_estimate(self):
        sample = ProportionSample(30, 100)
        low, high = wilson_interval(sample)
        assert low < sample.proportion < high

    def test_empty_sample_full_interval(self):
        assert wilson_interval(ProportionSample(0, 0)) == (0.0, 1.0)

    def test_narrower_with_more_data(self):
        small = wilson_interval(ProportionSample(3, 10))
        large = wilson_interval(ProportionSample(300, 1000))
        assert (large[1] - large[0]) < (small[1] - small[0])

    def test_alpha_constant(self):
        assert ALPHA == 0.05
