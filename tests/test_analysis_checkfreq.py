"""Unit tests for the robots.txt check-frequency analysis (§5.1)."""

from repro.analysis.checkfreq import (
    bot_recheck_result,
    recheck_by_category,
    skipped_check_rows,
)
from repro.analysis.compliance import Directive
from repro.logs.schema import LogRecord
from repro.uaparse.categories import BotCategory

HOUR = 3600.0


def record(
    timestamp: float,
    path: str = "/a",
    bot: str = "GPTBot",
    ua: str = "GPTBot/1.2",
) -> LogRecord:
    return LogRecord(
        useragent=ua,
        timestamp=timestamp,
        ip_hash="ip",
        asn=1,
        sitename="library.university.edu",
        uri_path=path,
        status_code=200,
        bytes_sent=1,
        bot_name=bot,
        bot_category=BotCategory.AI_DATA_SCRAPER,
    )


class TestRecheckResult:
    def test_never_fetches(self):
        result = bot_recheck_result("GPTBot", [record(i * HOUR) for i in range(48)])
        assert result.first_fetch is None
        assert not any(result.within.values())

    def test_checks_every_six_hours_satisfies_all_windows(self):
        records = []
        for i in range(0, 168, 6):
            records.append(record(i * HOUR, path="/robots.txt"))
            records.append(record(i * HOUR + 60, path="/a"))
        result = bot_recheck_result("GPTBot", records)
        assert all(result.within.values())

    def test_checks_daily_fails_12h_window(self):
        records = []
        for i in range(0, 168, 24):
            records.append(record(i * HOUR, path="/robots.txt"))
            records.append(record(i * HOUR + 60, path="/a"))
        result = bot_recheck_result("GPTBot", records)
        assert not result.within[12]
        assert result.within[24]
        assert result.within[168]

    def test_single_check_then_long_activity(self):
        records = [record(0, path="/robots.txt")]
        records += [record(i * HOUR, path="/a") for i in range(1, 400)]
        result = bot_recheck_result("GPTBot", records)
        assert not result.within[168]

    def test_category_resolved_from_registry(self):
        result = bot_recheck_result("GPTBot", [record(0, path="/robots.txt")])
        assert result.category is BotCategory.AI_DATA_SCRAPER


class TestRecheckByCategory:
    def test_proportions(self):
        frequent = []
        for i in range(0, 336, 6):
            frequent.append(
                record(i * HOUR, path="/robots.txt", bot="Scrapy", ua="Scrapy/2.0")
            )
        never = [
            record(i * HOUR, bot="HeadlessChrome", ua="HeadlessChrome/120")
            for i in range(48)
        ]
        proportions = recheck_by_category(frequent + never)
        assert proportions[BotCategory.SCRAPER][12] == 1.0
        assert proportions[BotCategory.HEADLESS_BROWSER][168] == 0.0

    def test_min_access_floor(self):
        sparse = [record(0, path="/robots.txt")]
        assert recheck_by_category(sparse, min_accesses=5) == {}


class TestSkippedCheckRows:
    def test_bot_that_never_checked_is_listed(self):
        per_directive = {
            Directive.CRAWL_DELAY: {
                "NoCheckBot": [record(i * 40.0, bot="NoCheckBot") for i in range(10)]
            },
            Directive.ENDPOINT: {
                "NoCheckBot": [record(i + 500, bot="NoCheckBot") for i in range(10)]
            },
            Directive.DISALLOW_ALL: {
                "NoCheckBot": [record(i + 900, bot="NoCheckBot") for i in range(10)]
            },
        }
        rows = skipped_check_rows(per_directive)
        assert len(rows) == 1
        row = rows[0]
        assert row.bot_name == "NoCheckBot"
        assert not any(row.checked.values())
        assert row.compliance[Directive.CRAWL_DELAY] == 1.0

    def test_bot_that_always_checked_not_listed(self):
        windows = {}
        for offset, directive in enumerate(Directive):
            windows[directive] = {
                "GoodBot": [
                    record(offset * 1000 + i, path="/robots.txt", bot="GoodBot")
                    for i in range(6)
                ]
            }
        assert skipped_check_rows(windows) == []

    def test_partial_checker_listed(self):
        windows = {
            Directive.CRAWL_DELAY: {
                "PartialBot": [
                    record(i, path="/robots.txt", bot="PartialBot") for i in range(6)
                ]
            },
            Directive.ENDPOINT: {
                "PartialBot": [record(i + 100, bot="PartialBot") for i in range(6)]
            },
        }
        rows = skipped_check_rows(windows)
        assert len(rows) == 1
        assert rows[0].checked[Directive.CRAWL_DELAY]
        assert not rows[0].checked[Directive.ENDPOINT]

    def test_below_floor_ignored(self):
        windows = {
            Directive.CRAWL_DELAY: {
                "TinyBot": [record(i, bot="TinyBot") for i in range(3)]
            }
        }
        assert skipped_check_rows(windows) == []
