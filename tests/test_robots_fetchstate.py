"""Unit tests for RFC 9309 fetch-failure semantics."""

from repro.robots.fetchstate import (
    MAX_REDIRECTS,
    FetchDisposition,
    classify_status,
    resolve_fetch,
)


class TestClassifyStatus:
    def test_2xx_parsed(self):
        assert classify_status(200) is FetchDisposition.PARSED
        assert classify_status(204) is FetchDisposition.PARSED

    def test_4xx_unavailable_allows_all(self):
        for status in (400, 401, 403, 404, 410, 451):
            assert classify_status(status) is FetchDisposition.ALLOW_ALL

    def test_5xx_unreachable_disallows_all(self):
        for status in (500, 502, 503):
            assert classify_status(status) is FetchDisposition.DISALLOW_ALL

    def test_network_error_convention(self):
        assert classify_status(599) is FetchDisposition.DISALLOW_ALL


class TestResolveFetch:
    def test_200_parses_body(self):
        result = resolve_fetch(200, b"User-agent: *\nDisallow: /x\n")
        assert result.disposition is FetchDisposition.PARSED
        assert not result.policy.can_fetch("bot", "/x/y")
        assert result.policy.can_fetch("bot", "/ok")

    def test_404_allows_everything(self):
        result = resolve_fetch(404)
        assert result.policy.can_fetch("bot", "/anything")

    def test_503_disallows_everything(self):
        result = resolve_fetch(503)
        assert not result.policy.can_fetch("bot", "/anything")

    def test_too_many_redirects_treated_unavailable(self):
        result = resolve_fetch(301, redirects=MAX_REDIRECTS + 1)
        assert result.disposition is FetchDisposition.ALLOW_ALL
        assert result.policy.can_fetch("bot", "/x")

    def test_redirects_within_limit_follow_status(self):
        result = resolve_fetch(200, b"", redirects=3)
        assert result.disposition is FetchDisposition.PARSED
        assert result.redirects == 3

    def test_empty_200_body_allows_all(self):
        result = resolve_fetch(200, b"")
        assert result.policy.can_fetch("bot", "/anything")
