"""Matrix results are byte-identical across every execution mode.

Same discipline as ``tests/test_distributed_parity.py``: canonical
``repr`` bytes of the artifacts must not change with ``--jobs``, the
executor backend, or a warm artifact cache written by a *different*
mode — cache keys ignore execution knobs entirely, so artifacts are
interchangeable across them.
"""

import pytest

from repro.scenarios import ScenarioGrid, deterrence_preset, run_matrix

#: Two cells keep the process/queue variants fast while still
#: exercising multi-shard merges.
GRID = ScenarioGrid(
    bots=("GPTBot",),
    strategies=("honest", "fetch_violate"),
    deterrence=(deterrence_preset("full"),),
    robots=("base",),
    traffic=("steady",),
    days=1,
    accesses_target=80,
)


def _result_bytes(result) -> bytes:
    return repr((result.cells, result.scorecard, result.roc)).encode("utf-8")


@pytest.fixture(scope="module")
def baseline():
    """The sequential, storeless reference run."""
    return _result_bytes(run_matrix(GRID, jobs=1, executor="inline"))


class TestExecutionModeParity:
    def test_jobs_1_matches_jobs_4(self, baseline):
        assert (
            _result_bytes(run_matrix(GRID, jobs=4, executor="inline"))
            == baseline
        )

    def test_thread_executor_matches_inline(self, baseline):
        assert (
            _result_bytes(run_matrix(GRID, jobs=4, executor="thread"))
            == baseline
        )

    def test_process_executor_matches_inline(self, baseline):
        assert (
            _result_bytes(run_matrix(GRID, jobs=2, executor="process"))
            == baseline
        )

    def test_queue_executor_matches_inline(self, baseline, tmp_path):
        result = run_matrix(
            GRID,
            jobs=2,
            executor="queue",
            spool=str(tmp_path / "spool"),
            workers=2,
        )
        assert _result_bytes(result) == baseline


class TestCrossModeCache:
    def test_cache_written_inline_serves_queue_run(self, baseline, tmp_path):
        cache = str(tmp_path / "cache")
        cold = run_matrix(
            GRID, jobs=1, executor="inline", cache_dir=cache
        )
        assert cold.computed == len(GRID)
        warm = run_matrix(
            GRID,
            jobs=4,
            executor="queue",
            spool=str(tmp_path / "spool"),
            workers=0,  # nobody serves the spool; nobody has to
            cache_dir=cache,
        )
        assert warm.computed == 0
        assert warm.stats.misses == 0
        assert _result_bytes(warm) == baseline

    def test_cache_written_at_jobs_4_serves_jobs_1(self, baseline, tmp_path):
        cache = str(tmp_path / "cache")
        run_matrix(GRID, jobs=4, executor="thread", cache_dir=cache)
        warm = run_matrix(GRID, jobs=1, executor="inline", cache_dir=cache)
        assert warm.computed == 0
        assert _result_bytes(warm) == baseline
