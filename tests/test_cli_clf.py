"""CLF ingestion through the CLI: analyze --format clf round trip."""

import pytest

from repro.cli import main
from repro.logs.io import parse_clf_line, read_clf, render_clf_line
from repro.simulation import SimulationEngine, quick_scenario


class TestClfRoundTrip:
    def test_render_parse_preserves_fields(self, quick_dataset):
        for record in quick_dataset.records[:200]:
            parsed = parse_clf_line(
                render_clf_line(record),
                sitename=record.sitename,
                asn=record.asn,
            )
            assert parsed.useragent == record.useragent
            assert parsed.ip_hash == record.ip_hash
            assert parsed.uri_path == record.uri_path
            assert parsed.status_code == record.status_code
            assert parsed.bytes_sent == record.bytes_sent
            assert parsed.sitename == record.sitename
            assert parsed.asn == record.asn
            assert parsed.timestamp == pytest.approx(
                record.timestamp, abs=1.0  # CLF timestamps are whole seconds
            )

    def test_read_clf_streams_written_file(self, tmp_path, quick_dataset):
        log = tmp_path / "access.log"
        records = quick_dataset.records[:500]
        log.write_text(
            "\n".join(render_clf_line(record) for record in records) + "\n"
        )
        loaded = list(read_clf(log, sitename="x.example", asn=7))
        assert len(loaded) == len(records)
        assert all(record.sitename == "x.example" for record in loaded)
        assert all(record.asn == 7 for record in loaded)


class TestAnalyzeClfCommand:
    @pytest.fixture(scope="class")
    def clf_log(self, tmp_path_factory):
        """Experiment-site records of a small study, rendered as CLF."""
        scenario = quick_scenario(scale=0.2, seed=5)
        dataset = SimulationEngine(
            scenario=scenario, with_noise=False
        ).run()
        site = scenario.experiment_site
        records = [
            record for record in dataset.records if record.sitename == site
        ]
        path = tmp_path_factory.mktemp("clf") / "experiment.log"
        path.write_text(
            "\n".join(render_clf_line(record) for record in records) + "\n"
        )
        return path, site

    def test_analyze_clf_prints_table(self, clf_log, capsys):
        path, site = clf_log
        code = main(
            [
                "analyze",
                str(path),
                "--format",
                "clf",
                "--site",
                site,
                "--seed",
                "5",
                "--experiments",
                "T4",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "Table 4" in captured.out
        assert "loaded" in captured.err

    def test_analyze_clf_sharded_matches_sequential(self, clf_log, capsys):
        path, site = clf_log
        args = [
            "analyze",
            str(path),
            "--format",
            "clf",
            "--site",
            site,
            "--seed",
            "5",
            "--experiments",
            "T4",
            "T9",
        ]
        assert main(args) == 0
        sequential = capsys.readouterr().out
        assert main(args + ["--jobs", "2", "--shard-by", "ip"]) == 0
        sharded = capsys.readouterr().out
        assert sharded == sequential
