"""Unit tests for the crawler agent and spoofed shadows."""

from repro.bots.agent import BotAgent, agent_seed, _is_exempt
from repro.bots.behavior import BotProfile, CheckPolicy, ComplianceProfile, NEVER_CHECKS
from repro.bots.spoofer import build_spoof_agents, spoof_compliance_for
from repro.simulation.clock import epoch
from repro.simulation.scenario import quick_scenario
from repro.uaparse.categories import BotCategory, RobotsPromise
from repro.web.generator import build_university_sites
from repro.web.server import WebServer


def make_server() -> WebServer:
    server = WebServer()
    for site in build_university_sites(seed=3):
        server.host(site)
    return server


def make_profile(**overrides) -> BotProfile:
    defaults = dict(
        name="AgentBot",
        user_agent="AgentBot/1.0",
        robots_token="AgentBot",
        category=BotCategory.OTHER,
        entity="Test",
        promise=RobotsPromise.UNKNOWN,
        home_asn=15169,
        accesses_per_day=2000.0,
        session_length_mean=8.0,
        inter_access_mean=5.0,
        compliance=ComplianceProfile(0.5, 0.9, 0.1, 0.9, 0.02, 0.9),
        check=CheckPolicy(interval_hours=12.0),
        experiment_site_share=0.5,
    )
    defaults.update(overrides)
    return BotProfile(**defaults)


class TestAgentSeeding:
    def test_seed_stable(self):
        assert agent_seed(1, "bot") == agent_seed(1, "bot")
        assert agent_seed(1, "bot") != agent_seed(2, "bot")
        assert agent_seed(1, "a") != agent_seed(1, "b")

    def test_agent_traffic_reproducible(self):
        day = epoch("2025-02-12")
        counts = []
        for _ in range(2):
            server = make_server()
            records = []
            server.add_hook(lambda req, res: records.append(req))
            agent = BotAgent(
                profile=make_profile(),
                scenario=quick_scenario(scale=1.0, seed=42),
                server=server,
            )
            agent.emit_day(day)
            counts.append([(r.timestamp, r.path) for r in records])
        assert counts[0] == counts[1]


class TestAgentBehaviour:
    def test_emits_traffic(self):
        server = make_server()
        agent = BotAgent(
            profile=make_profile(),
            scenario=quick_scenario(scale=1.0, seed=1),
            server=server,
        )
        agent.emit_day(epoch("2025-02-12"))
        assert agent.requests_emitted > 50

    def test_checking_bot_fetches_robots(self):
        server = make_server()
        robots_fetches = []
        server.add_hook(
            lambda req, res: robots_fetches.append(req)
            if req.path == "/robots.txt"
            else None
        )
        agent = BotAgent(
            profile=make_profile(),
            scenario=quick_scenario(scale=1.0, seed=1),
            server=server,
        )
        agent.emit_day(epoch("2025-02-12"))
        assert robots_fetches

    def test_never_checking_bot_fetches_no_robots_outside_v3(self):
        server = make_server()
        robots_fetches = []
        server.add_hook(
            lambda req, res: robots_fetches.append(req)
            if req.path == "/robots.txt"
            else None
        )
        profile = make_profile(
            check=NEVER_CHECKS,
            compliance=ComplianceProfile(0.5, 0.5, 0.1, 0.1, 0.0, 0.0),
        )
        agent = BotAgent(
            profile=profile, scenario=quick_scenario(scale=1.0, seed=1), server=server
        )
        agent.emit_day(epoch("2025-02-12"))  # v1 phase day in quick calendar
        assert robots_fetches == []

    def test_burst_multiplier_scales_volume(self):
        scenario = quick_scenario(scale=1.0, seed=1)
        base_profile = make_profile()
        burst_profile = make_profile(burst=("2025-02-12", "2025-02-13", 10.0))
        day = epoch("2025-02-12")

        server_a = make_server()
        agent_a = BotAgent(profile=base_profile, scenario=scenario, server=server_a)
        agent_a.emit_day(day)
        server_b = make_server()
        agent_b = BotAgent(profile=burst_profile, scenario=scenario, server=server_b)
        agent_b.emit_day(day)
        assert agent_b.requests_emitted > 3 * agent_a.requests_emitted

    def test_v3_compliant_bot_mostly_fetches_robots(self):
        scenario = quick_scenario(scale=1.0, seed=5)
        server = make_server()
        records = []
        server.add_hook(lambda req, res: records.append(req))
        profile = make_profile(
            compliance=ComplianceProfile(0.5, 0.5, 0.1, 0.1, 0.0, 1.0),
            experiment_site_share=1.0,
        )
        agent = BotAgent(profile=profile, scenario=scenario, server=server)
        # quick scenario: v3 runs 2025-02-18 .. 2025-02-21
        agent.emit_day(epoch("2025-02-19"))
        experiment = [r for r in records if r.host == scenario.experiment_site]
        robots = [r for r in experiment if r.path == "/robots.txt"]
        assert len(robots) / len(experiment) > 0.9

    def test_crawl_delay_compliance_under_v1(self):
        scenario = quick_scenario(scale=1.0, seed=9)
        server = make_server()
        records = []
        server.add_hook(lambda req, res: records.append(req))
        # Volume low enough that one agent's sessions rarely overlap:
        # the paper's tau-stratified metric interleaves concurrent
        # sessions, so a massively parallel bot measures low even when
        # every within-session delta complies.
        profile = make_profile(
            accesses_per_day=400.0,
            compliance=ComplianceProfile(0.0, 1.0, 0.1, 0.1, 0.0, 0.0),
            experiment_site_share=1.0,
            ip_count=1,
        )
        agent = BotAgent(profile=profile, scenario=scenario, server=server)
        for day in ("2025-02-13", "2025-02-14"):
            agent.emit_day(epoch(day))  # v1 days
        experiment = sorted(
            (r for r in records if r.host == scenario.experiment_site),
            key=lambda r: r.timestamp,
        )
        deltas = [
            later.timestamp - earlier.timestamp
            for earlier, later in zip(experiment, experiment[1:])
        ]
        compliant = sum(1 for delta in deltas if delta >= 30.0)
        assert compliant / len(deltas) > 0.7


class TestExemption:
    def test_exempt_tokens(self):
        assert _is_exempt("Googlebot")
        assert _is_exempt("googlebot-image")
        assert _is_exempt("BaiduSpider")
        assert not _is_exempt("yandex.com/bots")
        assert not _is_exempt("GPTBot")


class TestSpoofers:
    def test_no_spoof_agents_without_asns(self):
        profile = make_profile()
        agents = build_spoof_agents(
            profile, quick_scenario(scale=1.0, seed=1), make_server()
        )
        assert agents == []

    def test_one_agent_per_spoof_asn(self):
        profile = make_profile(spoof_asns=(100, 200), spoof_rate=0.1)
        agents = build_spoof_agents(
            profile, quick_scenario(scale=1.0, seed=1), make_server()
        )
        assert len(agents) == 2
        assert {agent.effective_asn for agent in agents} == {100, 200}

    def test_spoofed_agents_share_victim_ua(self):
        profile = make_profile(spoof_asns=(100,), spoof_rate=0.1)
        (agent,) = build_spoof_agents(
            profile, quick_scenario(scale=1.0, seed=1), make_server()
        )
        assert agent.profile.user_agent == profile.user_agent

    def test_default_spoof_compliance_indifferent(self):
        compliance = spoof_compliance_for("RandomBot")
        assert compliance.v2_endpoint_p == compliance.base_endpoint_p
        assert compliance.v3_robots_share == 0.0

    def test_paper_exceptions_respond(self):
        assert spoof_compliance_for("PerplexityBot").v2_endpoint_p > 0.5
        assert spoof_compliance_for("Bytespider").v3_robots_share > 0.5


class TestStrictRobots:
    def test_strict_agent_never_requests_denied_paths(self):
        """A strict agent precomputes its denied-path set from the
        cached policy (batch can_fetch_many) and skips those targets;
        the default agent probes them via trap_probe_rate."""
        scenario = quick_scenario(scale=1.0, seed=11)
        profile_kwargs = dict(trap_probe_rate=0.3, experiment_site_share=0.0)

        loose_server = make_server()
        loose_hits = []
        loose_server.add_hook(
            lambda req, res: loose_hits.append(req.path)
            if req.path.startswith("/secure/")
            else None
        )
        loose = BotAgent(
            profile=make_profile(**profile_kwargs),
            scenario=scenario,
            server=loose_server,
        )
        loose.emit_day(epoch("2025-02-12"))
        assert loose_hits  # the calibrated agent does probe traps

        # strict run: same profile, same seed, robots enforced
        strict_server = make_server()
        strict_hits = []
        strict_server.add_hook(
            lambda req, res: strict_hits.append(req.path)
            if req.path.startswith("/secure/")
            else None
        )
        strict = BotAgent(
            profile=make_profile(**profile_kwargs),
            scenario=scenario,
            server=strict_server,
            strict_robots=True,
        )
        strict.emit_day(epoch("2025-02-12"))
        assert strict_hits == []
        assert strict.requests_emitted > 0

    def test_strict_agent_caches_denied_set(self):
        scenario = quick_scenario(scale=1.0, seed=11)
        agent = BotAgent(
            profile=make_profile(experiment_site_share=0.0),
            scenario=scenario,
            server=make_server(),
            strict_robots=True,
        )
        agent.emit_day(epoch("2025-02-12"))
        states = [
            state
            for state in agent._robots.values()
            if state.policy is not None
        ]
        assert states
        for state in states:
            assert state.allow_verdicts is not None

    def test_strict_agent_live_checks_paths_added_after_sweep(self):
        """Pages added after the robots fetch are not in the verdict
        cache; the agent must fall back to a live policy check."""
        from repro.web.site import Page

        scenario = quick_scenario(scale=1.0, seed=11)
        server = make_server()
        agent = BotAgent(
            profile=make_profile(experiment_site_share=0.0),
            scenario=scenario,
            server=server,
            strict_robots=True,
        )
        agent.emit_day(epoch("2025-02-12"))
        hostname, state = next(
            (host, state)
            for host, state in agent._robots.items()
            if state.policy is not None
        )
        site = server.sites[hostname]
        site.add_page(Page(path="/secure/added-later", size_bytes=10, section="secure"))
        assert "/secure/added-later" not in (state.allow_verdicts or {})
        assert agent._strictly_denied(site, "/secure/added-later")
