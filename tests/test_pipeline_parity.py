"""Shard/merge parity: sharded pipelines must equal sequential ones.

The pipeline's headline guarantee is that ``jobs=N`` and ``jobs=1``
produce *identical* artifacts — same Table-5 cells, same per-bot
results, same preprocess report counts — for any input.  A property
test exercises the partition/merge machinery over randomized datasets
(thread executor: cheap enough for many hypothesis examples), and an
integration test runs real worker processes over the shared quick
dataset comparing rendered tables byte for byte.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bots.profiles import build_profiles
from repro.logs.schema import LogRecord
from repro.pipeline import PipelineConfig, build_study_pipeline
from repro.reporting.experiments import run_all, run_experiment
from repro.reporting.study import StudyAnalysis
from repro.simulation import quick_scenario

SCENARIO = quick_scenario(scale=0.1, seed=11)

#: Sites covering the experiment site, passive sites, and one more.
SITES = tuple(
    dict.fromkeys(
        [SCENARIO.experiment_site]
        + list(SCENARIO.passive_sites)[:3]
        + ["cs.university41.edu"]
    )
)

#: Real bot user agents (registry-identifiable) plus anonymous ones.
_PROFILES = build_profiles()
USER_AGENTS = tuple(
    [profile.user_agent for profile in _PROFILES[:8]]
    + ["Mozilla/5.0 (X11; Linux x86_64) Gecko/20100101 Firefox/115.0"]
)

PATHS = (
    "/",
    "/robots.txt",
    "/page-data/chunk-1",
    "/people/faculty",
    "/wp-admin/setup.php",  # scanner-looking
    "/.env",  # scanner-looking
)

_START = min(phase.start for phase in SCENARIO.phases)
_END = SCENARIO.overview_end


def _record(draw_tuple) -> LogRecord:
    site, ua, ip, asn, path, tick = draw_tuple
    span = _END - _START
    return LogRecord(
        useragent=ua,
        timestamp=_START + (tick % 10_000) / 10_000 * span,
        ip_hash=ip,
        asn=asn,
        sitename=site,
        uri_path=path,
        status_code=200,
        bytes_sent=512,
    )


record_strategy = st.tuples(
    st.sampled_from(SITES),
    st.sampled_from(USER_AGENTS),
    st.sampled_from([f"ip-{i}" for i in range(6)]),
    st.sampled_from([15169, 8075, 4837, 132203]),
    st.sampled_from(PATHS),
    st.integers(min_value=0, max_value=9_999),
).map(_record)


@settings(max_examples=25, deadline=None)
@given(st.lists(record_strategy, min_size=0, max_size=150))
def test_sharded_equals_sequential_on_random_datasets(records):
    sequential = build_study_pipeline(
        source=list(records),
        scenario=SCENARIO,
        config=PipelineConfig(jobs=1),
    )
    sharded = build_study_pipeline(
        source=list(records),
        scenario=SCENARIO,
        config=PipelineConfig(jobs=3, executor="thread"),
    )
    seq_records, seq_report = sequential.get("preprocess")
    shard_records, shard_report = sharded.get("preprocess")
    assert shard_report == seq_report
    assert [r.to_dict() for r in shard_records] == [
        r.to_dict() for r in seq_records
    ]
    assert sharded.get("per_bot") == sequential.get("per_bot")
    assert (
        sharded.get("category_table").cells
        == sequential.get("category_table").cells
    )
    assert sharded.get("skipped_checks") == sequential.get("skipped_checks")
    assert sharded.get("recheck") == sequential.get("recheck")
    assert sharded.get("site_traffic") == sequential.get("site_traffic")


@settings(max_examples=10, deadline=None)
@given(
    st.lists(record_strategy, min_size=0, max_size=120),
    st.integers(min_value=2, max_value=6),
    st.sampled_from(["site", "ip"]),
)
def test_parity_holds_for_any_shard_count_and_key(records, jobs, shard_by):
    sequential = build_study_pipeline(
        source=list(records), scenario=SCENARIO, config=PipelineConfig(jobs=1)
    )
    sharded = build_study_pipeline(
        source=list(records),
        scenario=SCENARIO,
        config=PipelineConfig(jobs=jobs, shard_by=shard_by, executor="thread"),
    )
    assert sharded.get("preprocess")[1] == sequential.get("preprocess")[1]
    assert sharded.get("per_bot") == sequential.get("per_bot")
    assert (
        sharded.get("category_table").cells
        == sequential.get("category_table").cells
    )


class TestProcessExecutorParity:
    """Real worker processes over the shared quick dataset."""

    def test_rendered_tables_byte_identical(self, quick_dataset, quick_analysis):
        sharded = StudyAnalysis(quick_dataset, jobs=2, executor="process")
        assert sharded.preprocess_report == quick_analysis.preprocess_report
        assert len(sharded.records) == len(quick_analysis.records)
        for experiment_id in ("T2", "T4", "T5", "T6", "T7", "T9"):
            assert (
                run_experiment(experiment_id, sharded).rendered
                == run_experiment(experiment_id, quick_analysis).rendered
            ), experiment_id

    def test_run_all_concurrent_matches_sequential(self, quick_analysis):
        sequential = run_all(quick_analysis)
        concurrent = run_all(quick_analysis, jobs=4)
        assert list(sequential) == list(concurrent)
        for key in sequential:
            assert sequential[key].rendered == concurrent[key].rendered


class TestObservatoryBatchParity:
    def test_batch_series_matches_sequential(self):
        from repro.observatory import RobotsObservatory

        observatory = RobotsObservatory()
        for index in range(9):
            site = f"site-{index % 3}.example"
            text = (
                "User-agent: *\n"
                f"Disallow: /private-{index}\n"
                + ("Disallow: /news/\n" if index % 2 else "")
            )
            observatory.record(site, float(index) * 86_400.0, text)
        sequential = {
            site: observatory.restrictiveness_series(site)
            for site in observatory.sites()
        }
        batched = observatory.batch_restrictiveness_series(
            jobs=2, executor="process"
        )
        assert batched == sequential
        slopes = observatory.batch_tightening_slopes(jobs=2, executor="thread")
        assert slopes == {
            site: observatory.tightening_slope(site)
            for site in observatory.sites()
        }
