"""Unit tests for the longitudinal robots.txt observatory."""

from repro.observatory import (
    RobotsObservatory,
    ai_agent_tokens,
    ai_restriction_index,
    fully_blocked_agents,
    restrictiveness,
)
from repro.robots.corpus import RobotsVersion, render_version
from repro.robots.diff import DEFAULT_PROBE_AGENTS
from repro.robots.policy import RobotsPolicy
from repro.simulation.clock import epoch

OPEN = "User-agent: *\nAllow: /\n"
AI_BLOCKED = (
    "User-agent: GPTBot\nDisallow: /\n\n"
    "User-agent: ClaudeBot\nDisallow: /\n\n"
    "User-agent: *\nAllow: /\n"
)
CLOSED = "User-agent: *\nDisallow: /\n"


class TestRestrictiveness:
    def test_open_site_near_zero(self):
        assert restrictiveness(RobotsPolicy.from_text(OPEN)) == 0.0

    def test_closed_site_near_one(self):
        assert restrictiveness(RobotsPolicy.from_text(CLOSED)) == 1.0

    def test_partial_between(self):
        value = restrictiveness(RobotsPolicy.from_text(AI_BLOCKED))
        assert 0.0 < value < 1.0

    def test_paper_versions_monotone(self):
        values = [
            restrictiveness(
                RobotsPolicy.from_text(render_version(version))
            )
            for version in (
                RobotsVersion.BASE,
                RobotsVersion.V2_ENDPOINT,
                RobotsVersion.V3_DISALLOW_ALL,
            )
        ]
        assert values == sorted(values)


class TestAiIndex:
    def test_ai_tokens_nonempty(self):
        tokens = ai_agent_tokens()
        assert "GPTBot" in tokens
        assert "ClaudeBot" in tokens
        assert "Googlebot" not in tokens

    def test_ai_blocking_moves_the_index(self):
        open_policy = RobotsPolicy.from_text(OPEN)
        blocked_policy = RobotsPolicy.from_text(AI_BLOCKED)
        assert ai_restriction_index(open_policy) == 0.0
        assert ai_restriction_index(blocked_policy) > 0.0

    def test_blocking_all_ai_tokens_saturates_index(self):
        blocks = "\n\n".join(
            f"User-agent: {token}\nDisallow: /" for token in ai_agent_tokens()
        )
        policy = RobotsPolicy.from_text(blocks + "\n\nUser-agent: *\nAllow: /\n")
        assert ai_restriction_index(policy) > 0.9
        # The general probe set includes non-AI agents, so it stays lower.
        assert restrictiveness(policy) < ai_restriction_index(policy)


class TestFullyBlocked:
    def test_closed_blocks_everyone(self):
        blocked = fully_blocked_agents(RobotsPolicy.from_text(CLOSED))
        assert "GPTBot" in blocked and "Googlebot" in blocked

    def test_ai_only_blocking(self):
        blocked = fully_blocked_agents(RobotsPolicy.from_text(AI_BLOCKED))
        assert "GPTBot" in blocked
        assert "Googlebot" not in blocked

    def test_caller_supplied_paths_are_honoured(self):
        # Only /news is closed: an agent is "fully blocked" exactly
        # when the caller's probe set stays inside the closed area.
        policy = RobotsPolicy.from_text(
            "User-agent: *\nDisallow: /news/\n"
        )
        assert fully_blocked_agents(policy, paths=("/news/a", "/news/b")) == list(
            DEFAULT_PROBE_AGENTS
        )
        assert fully_blocked_agents(policy, paths=("/news/a", "/open")) == []
        # The default probe set reaches open paths, so nobody is
        # fully blocked — the pre-fix body ignored ``paths`` entirely.
        assert fully_blocked_agents(policy) == []

    def test_robots_path_probe_ignored(self):
        blocked = fully_blocked_agents(
            RobotsPolicy.from_text(CLOSED), paths=("/robots.txt", "/a")
        )
        assert "GPTBot" in blocked

    def test_empty_probe_set_blocks_nobody(self):
        policy = RobotsPolicy.from_text(OPEN)
        assert fully_blocked_agents(policy, paths=()) == []
        assert fully_blocked_agents(policy, paths=("/robots.txt",)) == []


class TestObservatory:
    def _loaded(self) -> RobotsObservatory:
        observatory = RobotsObservatory()
        observatory.record("s.example", epoch("2022-01-01"), OPEN)
        observatory.record("s.example", epoch("2023-06-01"), AI_BLOCKED)
        observatory.record("s.example", epoch("2025-01-01"), CLOSED)
        return observatory

    def test_history_sorted_even_with_out_of_order_inserts(self):
        observatory = RobotsObservatory()
        observatory.record("s", epoch("2025-01-01"), CLOSED)
        observatory.record("s", epoch("2022-01-01"), OPEN)
        times = [snapshot.fetched_at for snapshot in observatory.history("s")]
        assert times == sorted(times)

    def test_latest_and_at(self):
        observatory = self._loaded()
        assert observatory.latest("s.example").text == CLOSED
        mid = observatory.at("s.example", epoch("2024-01-01"))
        assert mid is not None and mid.text == AI_BLOCKED
        assert observatory.at("s.example", epoch("2021-01-01")) is None
        assert observatory.latest("unknown") is None
        assert observatory.at("unknown", epoch("2024-01-01")) is None

    def test_at_exact_timestamp_and_long_history(self):
        observatory = RobotsObservatory()
        base = epoch("2024-01-01")
        for day in range(0, 500, 2):  # snapshots at even days only
            observatory.record("s", base + day * 86400.0, OPEN if day % 4 else CLOSED)
        # Exact hit returns that snapshot; odd days return the
        # preceding even-day snapshot (bisect boundary behaviour).
        exact = observatory.at("s", base + 100 * 86400.0)
        assert exact is not None and exact.fetched_at == base + 100 * 86400.0
        between = observatory.at("s", base + 101 * 86400.0)
        assert between is not None and between.fetched_at == base + 100 * 86400.0

    def test_restrictiveness_series_increases(self):
        series = observatory_series = self._loaded().restrictiveness_series(
            "s.example"
        )
        values = [value for _, value in series]
        assert values == sorted(values)

    def test_ai_series_tightens_over_time(self):
        observatory = self._loaded()
        ai_values = [value for _, value in observatory.ai_series("s.example")]
        assert ai_values == sorted(ai_values)
        assert ai_values[0] == 0.0
        assert ai_values[-1] == 1.0

    def test_change_events(self):
        events = self._loaded().change_events("s.example")
        assert len(events) == 2
        assert all(event.tightened for event in events)
        assert events[0].when == epoch("2023-06-01")

    def test_no_event_for_identical_snapshots(self):
        observatory = RobotsObservatory()
        observatory.record("s", 0.0, OPEN)
        observatory.record("s", 100.0, OPEN)
        assert observatory.change_events("s") == []

    def test_tightening_slope_positive(self):
        observatory = self._loaded()
        assert observatory.tightening_slope("s.example") > 0
        assert observatory.is_tightening("s.example")

    def test_loosening_slope_negative(self):
        observatory = RobotsObservatory()
        observatory.record("s", epoch("2022-01-01"), CLOSED)
        observatory.record("s", epoch("2024-01-01"), OPEN)
        assert observatory.tightening_slope("s") < 0

    def test_single_snapshot_slope_zero(self):
        observatory = RobotsObservatory()
        observatory.record("s", 0.0, OPEN)
        assert observatory.tightening_slope("s") == 0.0

    def test_sites_listing(self):
        observatory = self._loaded()
        observatory.record("other.example", 0.0, OPEN)
        assert observatory.sites() == ["other.example", "s.example"]
