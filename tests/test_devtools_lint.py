"""Tests for the repro.devtools.lint invariant checker.

Every rule gets a firing (bad fixture) and a quiet (good fixture)
test, plus suppression-comment and baseline round-trip coverage and an
integration check that the real repository lints clean.
"""

from __future__ import annotations

import json
import subprocess
import textwrap
from pathlib import Path

import pytest

from repro.devtools.lint import all_rules, run_lint
from repro.devtools.lint.cli import main as lint_main
from repro.exceptions import LintConfigError

REPO_ROOT = Path(__file__).resolve().parent.parent


def write_project(tmp_path: Path, files: dict[str, str]) -> None:
    (tmp_path / "src" / "repro").mkdir(parents=True, exist_ok=True)
    (tmp_path / "src" / "repro" / "__init__.py").write_text("")
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))


def lint(tmp_path: Path, files: dict[str, str], select=None, **kwargs):
    write_project(tmp_path, files)
    return run_lint(
        [tmp_path / "src"], root=tmp_path, select=select, **kwargs
    )


def codes(result) -> list[str]:
    return [finding.code for finding in result.findings]


class TestFramework:
    def test_at_least_eight_rules_registered(self):
        assert len(all_rules()) >= 8

    def test_rule_codes_are_unique_and_stable(self):
        rule_codes = [rule.code for rule in all_rules()]
        assert len(rule_codes) == len(set(rule_codes))
        assert all(code.startswith("RPR") for code in rule_codes)

    def test_parse_error_reported_not_raised(self, tmp_path):
        result = lint(tmp_path, {"src/repro/broken.py": "def f(:\n"})
        assert "RPR000" in codes(result)

    def test_unknown_select_code_raises(self, tmp_path):
        with pytest.raises(LintConfigError):
            lint(tmp_path, {}, select=["RPR999"])

    def test_missing_path_raises_not_silently_clean(self, tmp_path):
        # A typo'd path in CI must fail loudly, not lint 0 files green.
        with pytest.raises(LintConfigError):
            run_lint([tmp_path / "nope"], root=tmp_path)


GOOD_STAGE = """
    from functools import partial

    from repro.pipeline.stage import FunctionStage


    def helper(records):
        return sorted(records)


    def run(context, flag=True):
        return helper(context.params["records"])


    STAGE = FunctionStage("sorted", partial(run, flag=False))
"""


class TestStageDeterminismRPR001:
    def test_fires_on_clock_read_in_reachable_helper(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/stages.py": """
                import time
                from functools import partial

                from repro.pipeline.stage import FunctionStage


                def helper():
                    return time.time()


                def run(context, flag=True):
                    return helper()


                STAGE = FunctionStage("clocked", partial(run, flag=False))
                """
            },
            select=["RPR001"],
        )
        assert codes(result) == ["RPR001"]
        finding = result.findings[0]
        assert "time.time" in finding.message
        assert "clocked" in finding.message  # names the stage

    def test_fires_via_instance_method_indirection(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/stages.py": """
                import random

                from repro.pipeline.stage import FunctionStage


                class Enricher:
                    def enrich(self, records):
                        random.shuffle(records)
                        return records


                def run(context):
                    enricher = Enricher()
                    return enricher.enrich([])


                STAGE = FunctionStage("enrich", run)
                """
            },
            select=["RPR001"],
        )
        assert codes(result) == ["RPR001"]
        assert "random.shuffle" in result.findings[0].message

    def test_quiet_on_deterministic_stage(self, tmp_path):
        result = lint(
            tmp_path, {"src/repro/stages.py": GOOD_STAGE}, select=["RPR001"]
        )
        assert result.ok

    def test_quiet_when_clock_is_unreachable(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/stages.py": GOOD_STAGE,
                "src/repro/bench.py": """
                import time


                def timer():
                    return time.time()
                """,
            },
            select=["RPR001"],
        )
        assert result.ok


class TestStageEnvironRPR002:
    def test_fires_on_environ_read(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/stages.py": """
                import os

                from repro.pipeline.stage import FunctionStage


                def run(context):
                    return os.environ.get("REPRO_MODE")


                STAGE = FunctionStage("env", run)
                """
            },
            select=["RPR002"],
        )
        assert codes(result) == ["RPR002"]

    def test_quiet_on_environ_outside_stages(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/stages.py": GOOD_STAGE,
                "src/repro/config.py": """
                import os


                def from_env():
                    return os.environ.get("REPRO_MODE")
                """,
            },
            select=["RPR002"],
        )
        assert result.ok


class TestShardMutationRPR003:
    def test_fires_on_module_global_mutation_in_worker(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/shards.py": """
                from repro.pipeline.stage import ShardStage

                TOTALS: dict[str, int] = {}


                def worker(records):
                    TOTALS["seen"] = len(records)
                    return records


                def merge(outputs, context):
                    return outputs


                STAGE = ShardStage("preprocess", worker=worker, merge=merge)
                """
            },
            select=["RPR003"],
        )
        assert codes(result) == ["RPR003"]
        assert "TOTALS" in result.findings[0].message

    def test_fires_on_global_declaration(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/shards.py": """
                from repro.pipeline.stage import ShardStage

                COUNT = 0


                def worker(records):
                    global COUNT
                    COUNT += 1
                    return records


                def merge(outputs, context):
                    return outputs


                STAGE = ShardStage("preprocess", worker=worker, merge=merge)
                """
            },
            select=["RPR003"],
        )
        assert "RPR003" in codes(result)

    def test_quiet_on_pure_worker(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/shards.py": """
                from repro.pipeline.stage import ShardStage

                MARKERS = ("/wp-admin",)


                def worker(records):
                    totals = {}
                    totals["seen"] = len(records)
                    return [r for r in records if r not in MARKERS]


                def merge(outputs, context):
                    merged = []
                    for output in outputs:
                        merged.extend(output)
                    return merged


                STAGE = ShardStage("preprocess", worker=worker, merge=merge)
                """
            },
            select=["RPR003"],
        )
        assert result.ok

    def test_quiet_on_mutation_outside_worker_path(self, tmp_path):
        # FunctionStage (in-process) code may maintain module caches.
        result = lint(
            tmp_path,
            {
                "src/repro/stages.py": """
                from repro.pipeline.stage import FunctionStage

                CACHE: dict[str, object] = {}


                def run(context):
                    CACHE["last"] = context
                    return context


                STAGE = FunctionStage("cached", run)
                """
            },
            select=["RPR003"],
        )
        assert result.ok


class TestStageCallablesRPR004:
    def test_fires_on_lambda_stage(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/stages.py": """
                from repro.pipeline.stage import FunctionStage

                STAGE = FunctionStage("quick", lambda context: context)
                """
            },
            select=["RPR004"],
        )
        assert codes(result) == ["RPR004"]
        assert "lambda" in result.findings[0].message

    def test_fires_on_closure_worker(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/shards.py": """
                from repro.pipeline.stage import ShardStage


                def build(tag):
                    def worker(records):
                        return [tag, records]

                    def merge(outputs, context):
                        return outputs

                    return ShardStage("tagged", worker=worker, merge=merge)
                """
            },
            select=["RPR004"],
        )
        assert "RPR004" in codes(result)

    def test_quiet_on_module_level_callables(self, tmp_path):
        result = lint(
            tmp_path, {"src/repro/stages.py": GOOD_STAGE}, select=["RPR004"]
        )
        assert result.ok


class TestSchemaDriftRPR005:
    def test_fires_on_unknown_column_accessor(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/reduce.py": """
                def traffic(batch):
                    return sum(batch.column("sitenames"))
                """
            },
            select=["RPR005"],
        )
        assert codes(result) == ["RPR005"]
        assert "sitenames" in result.findings[0].message

    def test_fires_on_unknown_fieldnames_entry(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/writer.py": """
                import csv


                def write(handle):
                    return csv.DictWriter(
                        handle, fieldnames=["useragent", "bytes_sent"]
                    )
                """
            },
            select=["RPR005"],
        )
        # "bytes_sent" is the attribute name; the serialized column is
        # "bytes" — exactly the drift this rule exists to catch.
        assert codes(result) == ["RPR005"]

    def test_quiet_on_registry_columns(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/reduce.py": """
                def traffic(batch):
                    sites = batch.column("sitename")
                    sizes = batch.column("bytes")
                    return list(zip(sites, sizes))
                """
            },
            select=["RPR005"],
        )
        assert result.ok

    def test_quiet_on_integer_indexes(self, tmp_path):
        # pyarrow's RecordBatch.column(int) must not be flagged.
        result = lint(
            tmp_path,
            {
                "src/repro/arrow.py": """
                def first(arrow_batch):
                    return arrow_batch.column(0)
                """
            },
            select=["RPR005"],
        )
        assert result.ok


class TestOptionalDepsRPR006:
    def test_fires_on_unguarded_pyarrow_import(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/fastpath.py": """
                import pyarrow as pa


                def schema():
                    return pa.schema([])
                """
            },
            select=["RPR006"],
        )
        assert codes(result) == ["RPR006"]
        assert "unguarded" in result.findings[0].message

    def test_fires_on_guard_without_degrade_path(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/fastpath.py": """
                try:
                    import pyarrow as pa
                except ModuleNotFoundError:
                    pa = None
                """
            },
            select=["RPR006"],
        )
        assert codes(result) == ["RPR006"]
        assert "MissingDependencyError" in result.findings[0].message

    def test_quiet_on_guarded_import_with_degrade(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/fastpath.py": """
                from repro.exceptions import MissingDependencyError

                try:
                    import pyarrow as pa
                except ModuleNotFoundError:
                    pa = None


                def require():
                    if pa is None:
                        raise MissingDependencyError("install [parquet]")
                """
            },
            select=["RPR006"],
        )
        assert result.ok


class TestExceptionTaxonomyRPR007:
    def test_fires_on_builtin_raise(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/api.py": """
                def lookup(name):
                    if not name:
                        raise ValueError("name required")
                    return name
                """
            },
            select=["RPR007"],
        )
        assert codes(result) == ["RPR007"]

    def test_quiet_in_validators_and_constructors(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/api.py": """
                class Knob:
                    def __init__(self, value):
                        if value < 0:
                            raise ValueError("value must be >= 0")
                        self.value = value


                def validate_token(token):
                    if not token:
                        raise ValueError("empty token")
                """
            },
            select=["RPR007"],
        )
        assert result.ok

    def test_quiet_on_taxonomy_raise(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/api.py": """
                from repro.exceptions import ConfigError


                def lookup(name):
                    if not name:
                        raise ConfigError("name required")
                    return name
                """
            },
            select=["RPR007"],
        )
        assert result.ok


class TestUnseededRngRPR008:
    def test_fires_on_unseeded_default_rng(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/sim.py": """
                import numpy as np


                def make_rng():
                    return np.random.default_rng()
                """
            },
            select=["RPR008"],
        )
        assert codes(result) == ["RPR008"]

    def test_fires_on_global_rng_function(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/sim.py": """
                import random


                def jitter():
                    return random.random()
                """
            },
            select=["RPR008"],
        )
        assert codes(result) == ["RPR008"]

    def test_quiet_on_seeded_constructions(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/sim.py": """
                import random

                import numpy as np


                def make_rngs(seed):
                    return np.random.default_rng(seed), random.Random(seed)
                """
            },
            select=["RPR008"],
        )
        assert result.ok


class TestTrackedArtifactsRPR009:
    def _git(self, cwd, *args):
        return subprocess.run(
            ["git", "-C", str(cwd), *args],
            capture_output=True,
            text=True,
            check=True,
        )

    def test_fires_on_tracked_bytecode(self, tmp_path):
        write_project(tmp_path, {"src/repro/mod.py": "X = 1\n"})
        cache = tmp_path / "src" / "repro" / "__pycache__"
        cache.mkdir()
        (cache / "mod.cpython-311.pyc").write_bytes(b"\x00")
        self._git(tmp_path, "init", "-q")
        self._git(tmp_path, "add", "-f", ".")
        result = run_lint(
            [tmp_path / "src"], root=tmp_path, select=["RPR009"]
        )
        assert codes(result) == ["RPR009"]
        assert "__pycache__" in result.findings[0].path

    def test_quiet_on_clean_tree(self, tmp_path):
        write_project(tmp_path, {"src/repro/mod.py": "X = 1\n"})
        self._git(tmp_path, "init", "-q")
        self._git(tmp_path, "add", ".")
        result = run_lint(
            [tmp_path / "src"], root=tmp_path, select=["RPR009"]
        )
        assert result.ok

    def test_quiet_outside_git(self, tmp_path):
        result = lint(
            tmp_path, {"src/repro/mod.py": "X = 1\n"}, select=["RPR009"]
        )
        assert result.ok


class TestSuppressions:
    def test_inline_suppression_silences_finding(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/sim.py": """
                import numpy as np


                def make_rng():
                    return np.random.default_rng()  # lint: ignore[RPR008]
                """
            },
            select=["RPR008"],
        )
        assert result.ok
        assert result.suppressed == 1

    def test_suppression_is_code_specific(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/sim.py": """
                import numpy as np


                def make_rng():
                    return np.random.default_rng()  # lint: ignore[RPR001]
                """
            },
            select=["RPR008"],
        )
        assert codes(result) == ["RPR008"]

    def test_bare_suppression_silences_all_codes(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/sim.py": """
                import numpy as np


                def make_rng():
                    return np.random.default_rng()  # lint: ignore
                """
            },
            select=["RPR008"],
        )
        assert result.ok


class TestBaseline:
    BAD = {
        "src/repro/sim.py": """
        import numpy as np


        def make_rng():
            return np.random.default_rng()
        """
    }

    def test_round_trip(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        written = lint(
            tmp_path,
            self.BAD,
            select=["RPR008"],
            baseline_path=baseline,
            update_baseline=True,
        )
        assert written.baselined == 1
        payload = json.loads(baseline.read_text())
        assert payload["version"] == 1
        assert len(payload["findings"]) == 1

        rerun = run_lint(
            [tmp_path / "src"],
            root=tmp_path,
            select=["RPR008"],
            baseline_path=baseline,
        )
        assert rerun.ok
        assert rerun.baselined == 1

    def test_new_findings_still_fail(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        lint(
            tmp_path,
            self.BAD,
            select=["RPR008"],
            baseline_path=baseline,
            update_baseline=True,
        )
        # A second copy of the grandfathered violation is a regression.
        (tmp_path / "src" / "repro" / "sim2.py").write_text(
            "import numpy as np\n\n\ndef rng():\n"
            "    return np.random.default_rng()\n"
        )
        rerun = run_lint(
            [tmp_path / "src"],
            root=tmp_path,
            select=["RPR008"],
            baseline_path=baseline,
        )
        assert len(rerun.findings) == 1
        assert rerun.baselined == 1

    def test_malformed_baseline_raises(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{not json")
        with pytest.raises(LintConfigError):
            lint(tmp_path, self.BAD, baseline_path=baseline)


class TestCli:
    def test_exit_zero_on_clean(self, tmp_path, capsys):
        write_project(tmp_path, {"src/repro/mod.py": "X = 1\n"})
        code = lint_main(
            [str(tmp_path / "src"), "--root", str(tmp_path), "--select", "RPR008"]
        )
        assert code == 0

    def test_exit_one_on_findings_text_and_json(self, tmp_path, capsys):
        write_project(
            tmp_path,
            {
                "src/repro/sim.py": (
                    "import numpy as np\n\n\ndef rng():\n"
                    "    return np.random.default_rng()\n"
                )
            },
        )
        code = lint_main(
            [str(tmp_path / "src"), "--root", str(tmp_path), "--select", "RPR008"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "RPR008" in out

        code = lint_main(
            [
                str(tmp_path / "src"),
                "--root",
                str(tmp_path),
                "--select",
                "RPR008",
                "--format",
                "json",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["code"] == "RPR008"

    def test_exit_two_on_bad_select(self, tmp_path):
        assert lint_main([str(tmp_path), "--select", "NOPE"]) == 2

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "RPR001" in out and "RPR009" in out


BAD_SPOOL = """
    import json


    def write_lease(path, data):
        with open(path, "w") as handle:
            json.dump(data, handle)


    def publish_result(path, blob):
        path.write_bytes(blob)
"""

GOOD_SPOOL = """
    import json

    from repro.pipeline.store import atomic_write_bytes


    def write_lease(path, data):
        atomic_write_bytes(path, json.dumps(data).encode("utf-8"))


    def read_lease(path):
        with open(path) as handle:
            return json.load(handle)
"""


class TestSpoolHygieneRPR010:
    def test_fires_on_direct_spool_writes(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/distributed/__init__.py": "",
                "src/repro/distributed/queue.py": BAD_SPOOL,
            },
            select=["RPR010"],
        )
        assert codes(result) == ["RPR010", "RPR010"]
        messages = " ".join(f.message for f in result.findings)
        assert "atomic_write_bytes" in messages

    def test_quiet_on_atomic_helper_and_reads(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/distributed/__init__.py": "",
                "src/repro/distributed/queue.py": GOOD_SPOOL,
            },
            select=["RPR010"],
        )
        assert codes(result) == []

    def test_quiet_outside_distributed_package(self, tmp_path):
        # The same writes in non-distributed code are RPR010-silent:
        # the rule is scoped to the worker/queue call graph.
        result = lint(
            tmp_path,
            {"src/repro/logs/io.py": BAD_SPOOL},
            select=["RPR010"],
        )
        assert codes(result) == []

    def test_fires_transitively_through_helpers(self, tmp_path):
        helper = """
            def torn_write(path, blob):
                with open(path, "wb") as handle:
                    handle.write(blob)
        """
        caller = """
            from repro.distributed.util import torn_write


            def publish(path, blob):
                torn_write(path, blob)
        """
        result = lint(
            tmp_path,
            {
                "src/repro/distributed/__init__.py": "",
                "src/repro/distributed/util.py": helper,
                "src/repro/distributed/worker.py": caller,
            },
            select=["RPR010"],
        )
        assert codes(result) == ["RPR010"]


class TestRepositoryIsClean:
    """The acceptance criterion: the shipped tree lints clean."""

    def test_src_and_benchmarks_lint_clean(self):
        result = run_lint(
            [REPO_ROOT / "src", REPO_ROOT / "benchmarks"],
            root=REPO_ROOT,
            baseline_path=REPO_ROOT / ".lint-baseline.json",
        )
        assert result.ok, [f.render() for f in result.findings]

    def test_stage_callgraph_reaches_analysis_layer(self):
        from repro.devtools.lint.project import load_project

        project = load_project([REPO_ROOT / "src"], root=REPO_ROOT)
        graph = project.callgraph
        assert len(graph.roots) >= 10
        reachable = set(graph.reachable)
        assert any("repro.analysis.perbot" in q for q in reachable)
        assert any("repro.logs.preprocess" in q for q in reachable)
        # shard workers are tracked separately for parallel-safety
        assert any(
            "preprocess_shard" in q for q in graph.shard_reachable
        )

    def test_distributed_callgraph_is_separate(self):
        from repro.devtools.lint.project import load_project

        project = load_project([REPO_ROOT / "src"], root=REPO_ROOT)
        graph = project.callgraph
        distributed = set(graph.distributed_reachable)
        assert any("repro.distributed.worker.run_worker" in q for q in distributed)
        assert any("repro.distributed.queue" in q for q in distributed)
        # The atomic helper is reachable from queue code...
        assert "repro.pipeline.store.atomic_write_bytes" in distributed
        # ...but lease/heartbeat clock use must never leak into the
        # stage-determinism tables (RPR001 would fire on time.time).
        assert not any("repro.distributed" in q for q in graph.reachable)
        assert not any("repro.distributed" in q for q in graph.shard_reachable)

    def test_scenario_stages_are_callgraph_covered(self):
        """The matrix runner's stages (and the simulation cone their
        worker pulls in) fall under RPR001-RPR005 automatically."""
        from repro.devtools.lint.project import load_project

        project = load_project([REPO_ROOT / "src"], root=REPO_ROOT)
        graph = project.callgraph
        by_stage = {
            (root.stage_name, root.role): root.decl.qualname
            for root in graph.roots
            if root.decl is not None
        }
        assert by_stage[("cells", "worker")] == (
            "repro.scenarios.matrix._cell_worker"
        )
        assert by_stage[("cells", "merge")] == (
            "repro.scenarios.matrix._merge_cells"
        )
        assert ("scorecard", "stage") in by_stage
        assert ("roc", "stage") in by_stage
        # The whole cell simulation runs inside the shard worker, so
        # the determinism rules see the simulation/bots cone it pulls
        # in (seeded-RNG-only is enforced there).
        shard = set(graph.shard_reachable)
        assert "repro.scenarios.simulate.run_cell" in shard
        assert "repro.scenarios.simulate.measure_cell" in shard
        assert any(q.startswith("repro.bots.agent") for q in shard)
        assert any(q.startswith("repro.simulation.hooks") for q in shard)
