"""Unit tests for the ASN registry and whois client."""

import pytest

from repro.asn.database import default_asn_registry
from repro.asn.whois import WhoisClient
from repro.exceptions import ASNLookupError


class TestAsnRegistry:
    def test_lookup_known(self):
        info = default_asn_registry().lookup(15169)
        assert info.name == "GOOGLE"
        assert info.org == "Google LLC"

    def test_lookup_unknown_raises(self):
        with pytest.raises(ASNLookupError):
            default_asn_registry().lookup(424242)

    def test_get_returns_none_for_unknown(self):
        assert default_asn_registry().get(424242) is None

    def test_by_name_case_insensitive(self):
        info = default_asn_registry().by_name("google-cloud-platform")
        assert info is not None and info.asn == 396982

    def test_name_of_synthesizes_for_unknown(self):
        assert default_asn_registry().name_of(424242) == "AS424242"

    def test_paper_table8_asns_present(self):
        registry = default_asn_registry()
        for handle in (
            "GOOGLE",
            "MICROSOFT-CORP-MSN-AS-BLOCK",
            "AMAZON-02",
            "AMAZON-AES",
            "FACEBOOK",
            "YANDEX",
            "CHINA169-Backbone",
            "DMZHOST",
            "AHREFS-AS-AP",
            "Telefonica_de_Espana",
            "PROSPERO-AS",
            "M247",
            "BORUSANTELEKOM-AS",
            "KAKAO-AS-KR-KR51",
        ):
            assert registry.by_name(handle) is not None, handle

    def test_of_kind(self):
        clouds = default_asn_registry().of_kind("cloud")
        assert any(info.name == "AMAZON-02" for info in clouds)

    def test_contains(self):
        assert 15169 in default_asn_registry()
        assert 424242 not in default_asn_registry()


class TestWhoisClient:
    def test_lookup_known(self):
        client = WhoisClient()
        result = client.lookup(15169)
        assert result.handle == "GOOGLE"
        assert result.found
        assert result.registry == "ARIN"

    def test_lookup_unknown_synthesized(self):
        client = WhoisClient()
        result = client.lookup(999999)
        assert not result.found
        assert result.handle == "AS999999"
        assert client.misses == 1

    def test_memoization(self):
        client = WhoisClient()
        first = client.lookup(15169)
        second = client.lookup(15169)
        assert first is second
        assert client.unique_cached == 1
        assert client.queries == 2

    def test_lookup_many_polls_once_per_asn(self):
        client = WhoisClient()
        results = client.lookup_many({15169, 8075, 15169})
        assert set(results) == {15169, 8075}
        assert client.unique_cached == 2
