"""Unit tests for the RobotsPolicy access API."""

from repro.robots.policy import RobotsPolicy

PAPER_STYLE = """\
User-agent: Googlebot
Allow: /
Disallow: /404
Disallow: /secure/*

User-agent: *
Allow: /page-data/*
Disallow: /
"""


class TestCanFetch:
    def test_named_group_access(self):
        policy = RobotsPolicy.from_text(PAPER_STYLE)
        assert policy.can_fetch("Googlebot", "/anything")
        assert not policy.can_fetch("Googlebot", "/404")
        assert not policy.can_fetch("Googlebot", "/secure/area")

    def test_catch_all_restrictions(self):
        policy = RobotsPolicy.from_text(PAPER_STYLE)
        assert not policy.can_fetch("GPTBot", "/news/article")
        assert policy.can_fetch("GPTBot", "/page-data/index/page-data.json")

    def test_robots_txt_always_fetchable(self):
        policy = RobotsPolicy.from_text(PAPER_STYLE)
        assert policy.can_fetch("GPTBot", "/robots.txt")
        assert RobotsPolicy.disallow_all().can_fetch("any", "/robots.txt")

    def test_agent_matching_case_insensitive(self):
        policy = RobotsPolicy.from_text(PAPER_STYLE)
        assert policy.can_fetch("googlebot", "/anything")

    def test_prefix_product_token(self):
        policy = RobotsPolicy.from_text(PAPER_STYLE)
        assert policy.can_fetch("Googlebot-Image", "/anything")

    def test_empty_robots_allows_everything(self):
        policy = RobotsPolicy.from_text("")
        assert policy.can_fetch("any", "/x")


class TestForcedPolicies:
    def test_allow_all(self):
        policy = RobotsPolicy.allow_all()
        assert policy.can_fetch("any", "/x")
        assert policy.crawl_delay("any") is None

    def test_disallow_all(self):
        policy = RobotsPolicy.disallow_all()
        assert not policy.can_fetch("any", "/x")


class TestCrawlDelay:
    def test_delay_for_catch_all(self):
        policy = RobotsPolicy.from_text(
            "User-agent: *\nAllow: /\nCrawl-delay: 30\n"
        )
        assert policy.crawl_delay("GPTBot") == 30.0

    def test_specific_group_without_delay(self):
        text = (
            "User-agent: Googlebot\nAllow: /\n\n"
            "User-agent: *\nCrawl-delay: 30\n"
        )
        policy = RobotsPolicy.from_text(text)
        # Googlebot is governed by its own group, which sets no delay.
        assert policy.crawl_delay("Googlebot") is None
        assert policy.crawl_delay("Other") == 30.0


class TestDecide:
    def test_decision_carries_rule_and_reason(self):
        policy = RobotsPolicy.from_text(PAPER_STYLE)
        decision = policy.decide("GPTBot", "/news/x")
        assert not decision.allowed
        assert decision.matched_rule is not None
        assert decision.matched_rule.path == "/"
        assert "disallows" in decision.reason

    def test_default_allow_reason(self):
        policy = RobotsPolicy.from_text("User-agent: x\nDisallow: /y\n")
        decision = policy.decide("unrelated", "/z")
        assert decision.allowed
        assert decision.matched_rule is None


class TestHelpers:
    def test_allowed_paths_filter(self):
        policy = RobotsPolicy.from_text(PAPER_STYLE)
        paths = ["/a", "/page-data/x", "/robots.txt"]
        assert policy.allowed_paths("GPTBot", paths) == [
            "/page-data/x",
            "/robots.txt",
        ]

    def test_governing_group(self):
        policy = RobotsPolicy.from_text(PAPER_STYLE)
        group = policy.governing_group("Googlebot")
        assert group is not None
        assert group.user_agents == ["Googlebot"]
