"""Unit and property tests for fuzzy bot-name matching."""

from hypothesis import given
from hypothesis import strategies as st

from repro.uaparse.fuzzy import best_match, levenshtein, normalize_name, similarity

names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
    min_size=0,
    max_size=20,
)


class TestLevenshtein:
    def test_identity(self):
        assert levenshtein("googlebot", "googlebot") == 0

    def test_single_substitution(self):
        assert levenshtein("googlebot", "gooblebot") <= 2

    def test_empty_cases(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3
        assert levenshtein("", "") == 0

    def test_known_distance(self):
        assert levenshtein("kitten", "sitting") == 3

    @given(names, names)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(names, names)
    def test_bounds(self, a, b):
        distance = levenshtein(a, b)
        assert abs(len(a) - len(b)) <= distance <= max(len(a), len(b))

    @given(names, names, names)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)


class TestNormalizeName:
    def test_lowercases_and_strips_separators(self):
        assert normalize_name("Google Bot") == "googlebot"
        assert normalize_name("google-bot") == "googlebot"
        assert normalize_name("google_bot") == "googlebot"

    def test_strips_version_suffix(self):
        assert normalize_name("Googlebot/2.1") == "googlebot"

    def test_keeps_non_version_slash(self):
        # yandex.com/bots is a name, not a version suffix.
        assert "bots" in normalize_name("yandex.com/bots")


class TestSimilarity:
    def test_identical_is_one(self):
        assert similarity("GPTBot", "gptbot") == 1.0

    def test_unrelated_is_low(self):
        assert similarity("Googlebot", "Bytespider") < 0.5

    @given(names, names)
    def test_range(self, a, b):
        assert 0.0 <= similarity(a, b) <= 1.0


class TestBestMatch:
    CANON = ["Googlebot", "GPTBot", "ClaudeBot", "Bytespider", "bingbot"]

    def test_exact_normalized_match(self):
        assert best_match("googlebot/2.1", self.CANON) == ("Googlebot", 1.0)

    def test_close_misspelling(self):
        match = best_match("GoogleBott", self.CANON)
        assert match is not None and match[0] == "Googlebot"

    def test_no_match_below_threshold(self):
        assert best_match("CompletelyDifferent", self.CANON) is None

    def test_empty_candidates(self):
        assert best_match("anything", []) is None

    def test_threshold_configurable(self):
        loose = best_match("Gooqle", self.CANON, threshold=0.5)
        assert loose is not None
