"""Queue executor == inline executor, byte for byte.

The distributed executor's contract mirrors the columnar one
(``tests/test_columnar_parity.py``): routing shard maps through a
filesystem spool and worker processes must not change a single
artifact byte relative to the inline executor — for every corpus
format the pipeline reads (JSONL, CSV, Parquet) — and because cache
keys ignore execution knobs entirely, a warm cache written by an
inline run satisfies a queue run without materializing a single row
(``workers=0``: nobody is serving the spool, and nobody has to).
"""

import tempfile

import pytest

from repro.bots.profiles import build_profiles
from repro.logs.io import convert_log, read_batches, read_jsonl, write_jsonl
from repro.logs.parquet import HAVE_PYARROW
from repro.logs.schema import LogRecord
from repro.pipeline import PipelineConfig, RecordSource, build_study_pipeline
from repro.simulation import quick_scenario

SCENARIO = quick_scenario(scale=0.1, seed=11)

SITES = tuple(
    dict.fromkeys(
        [SCENARIO.experiment_site]
        + list(SCENARIO.passive_sites)[:3]
        + ["cs.university41.edu"]
    )
)

_PROFILES = build_profiles()
USER_AGENTS = tuple(
    [profile.user_agent for profile in _PROFILES[:8]]
    + ["Mozilla/5.0 (X11; Linux x86_64) Gecko/20100101 Firefox/115.0"]
)

PATHS = (
    "/",
    "/robots.txt",
    "/page-data/chunk-1",
    "/people/faculty",
    "/wp-admin/setup.php",  # scanner-looking
    "/.env",  # scanner-looking
)

_START = min(phase.start for phase in SCENARIO.phases)
_END = SCENARIO.overview_end

COMPARED_ARTIFACTS = (
    "preprocess",
    "per_bot",
    "per_bot_spoofed",
    "category_table",
    "skipped_checks",
    "recheck",
    "site_traffic",
)


def _corpus(count=60):
    span = _END - _START
    return [
        LogRecord(
            useragent=USER_AGENTS[i % len(USER_AGENTS)],
            timestamp=_START + (i * 13 % 10_000) / 10_000 * span,
            ip_hash=f"ip-{i % 5}",
            asn=(15169, 8075, 4837, 132203)[i % 4],
            sitename=SITES[i % len(SITES)],
            uri_path=PATHS[i % len(PATHS)],
            status_code=200,
            bytes_sent=512,
        )
        for i in range(count)
    ]


def _artifact_bytes(pipeline, name):
    """Canonical serialized bytes of one artifact (same discipline as
    ``tests/test_columnar_parity.py``: value-based, sets sorted)."""
    value = pipeline.get(name)
    if name == "preprocess":
        records, report = value
        return repr(
            (
                [record.to_dict() for record in records],
                sorted(report.scanner_ips),
                report.input_records,
                report.scanner_records,
                report.identified_bots,
                report.unique_asns,
                report.whois_misses,
            )
        ).encode("utf-8")
    return repr(value).encode("utf-8")


def _inline_pipeline(source, **kwargs):
    return build_study_pipeline(
        source=source,
        scenario=SCENARIO,
        config=PipelineConfig(jobs=4, executor="inline"),
        **kwargs,
    )


def _queue_pipeline(source, spool, workers=2, **kwargs):
    return build_study_pipeline(
        source=source,
        scenario=SCENARIO,
        config=PipelineConfig(
            jobs=4, executor="queue", spool=str(spool), workers=workers
        ),
        **kwargs,
    )


def _assert_parity(queue_pipeline, inline_pipeline):
    for name in COMPARED_ARTIFACTS:
        assert _artifact_bytes(queue_pipeline, name) == _artifact_bytes(
            inline_pipeline, name
        ), name


def _format_source(records, tmp_path, fmt):
    """A :class:`RecordSource` over ``records`` serialized as ``fmt``."""
    jsonl = tmp_path / "log.jsonl"
    write_jsonl(records, jsonl)
    if fmt == "jsonl":
        return RecordSource.of(lambda: read_jsonl(jsonl))
    target = tmp_path / f"log.{fmt}"
    convert_log(jsonl, target, "jsonl", fmt)
    return RecordSource.of_batches(
        lambda: read_batches(target, format=fmt)
    )


FORMATS = [
    "jsonl",
    "csv",
    pytest.param(
        "parquet",
        marks=pytest.mark.skipif(not HAVE_PYARROW, reason="pyarrow missing"),
    ),
]


class TestQueueInlineParity:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_queue_matches_inline_at_jobs_4(self, tmp_path, fmt):
        records = _corpus()
        inline = _inline_pipeline(_format_source(records, tmp_path, fmt))
        queue = _queue_pipeline(
            _format_source(records, tmp_path, fmt), tmp_path / "spool"
        )
        _assert_parity(queue, inline)

    def test_queue_matches_inline_on_empty_corpus(self, tmp_path):
        records = []
        inline = _inline_pipeline(_format_source(records, tmp_path, "jsonl"))
        queue = _queue_pipeline(
            _format_source(records, tmp_path, "jsonl"), tmp_path / "spool"
        )
        _assert_parity(queue, inline)


class TestWarmCacheNeedsNoWorkers:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_inline_warm_cache_serves_queue_run(self, tmp_path, fmt):
        """A queue run over a cache an inline run already filled does
        zero shard work: ``workers=0`` means nobody serves the spool,
        and every stage is a cache hit so nobody needs to."""
        records = _corpus()
        source = _format_source(records, tmp_path, fmt)
        with tempfile.TemporaryDirectory() as cache_dir:
            cold = _inline_pipeline(source, cache_dir=cache_dir)
            cold.run()
            assert cold.context.stats.misses > 0

            warm = _queue_pipeline(
                _format_source(records, tmp_path, fmt),
                tmp_path / "spool",
                workers=0,
                cache_dir=cache_dir,
            )
            warm.run()
            assert warm.context.stats.misses == 0
            assert warm.context.stats.hits > 0
            _assert_parity(warm, cold)
        # The spool was never touched: no tasks, no workers, no rows.
        assert not (tmp_path / "spool").exists()

    def test_queue_warm_cache_serves_queue_rerun(self, tmp_path):
        """Queue runs also *write* the shared cache: a second queue
        run (even with zero workers) is served entirely from it."""
        records = _corpus()
        with tempfile.TemporaryDirectory() as cache_dir:
            cold = _queue_pipeline(
                _format_source(records, tmp_path, "jsonl"),
                tmp_path / "spool",
                cache_dir=cache_dir,
            )
            cold.run()
            assert cold.context.stats.misses > 0

            warm = _queue_pipeline(
                _format_source(records, tmp_path, "jsonl"),
                tmp_path / "spool2",
                workers=0,
                cache_dir=cache_dir,
            )
            warm.run()
            assert warm.context.stats.misses == 0
            _assert_parity(warm, cold)
        assert not (tmp_path / "spool2").exists()
