"""Unit tests for the category aggregation (Table 5 machinery)."""

from repro.analysis.aggregate import category_compliance
from repro.analysis.compliance import Directive
from repro.analysis.perbot import BotDirectiveResult
from repro.analysis.stats import INVALID_TEST, ProportionSample
from repro.uaparse.categories import BotCategory


def result(bot: str, directive: Directive, successes: int, trials: int):
    return BotDirectiveResult(
        bot_name=bot,
        directive=directive,
        baseline=ProportionSample(0, 10),
        treatment=ProportionSample(successes, trials),
        test=INVALID_TEST,
        checked_robots=True,
    )


def make_results():
    """Two SEO bots with different volumes; one AI data scraper."""
    return {
        "AhrefsBot": {
            Directive.CRAWL_DELAY: result("AhrefsBot", Directive.CRAWL_DELAY, 90, 100),
            Directive.DISALLOW_ALL: result("AhrefsBot", Directive.DISALLOW_ALL, 100, 100),
        },
        "SemrushBot": {
            Directive.CRAWL_DELAY: result("SemrushBot", Directive.CRAWL_DELAY, 10, 300),
            Directive.DISALLOW_ALL: result("SemrushBot", Directive.DISALLOW_ALL, 270, 300),
        },
        "GPTBot": {
            Directive.CRAWL_DELAY: result("GPTBot", Directive.CRAWL_DELAY, 50, 100),
            Directive.DISALLOW_ALL: result("GPTBot", Directive.DISALLOW_ALL, 100, 100),
        },
    }


class TestCategoryCompliance:
    def test_weighting_by_accesses(self):
        table = category_compliance(make_results())
        seo = table.cells[BotCategory.SEO_CRAWLER]
        # (90 + 10) / (100 + 300) = 0.25 — the heavier bot dominates.
        assert seo[Directive.CRAWL_DELAY].compliance == 0.25
        assert seo[Directive.CRAWL_DELAY].accesses == 400
        assert seo[Directive.CRAWL_DELAY].bots == 2

    def test_category_average_unweighted_across_directives(self):
        table = category_compliance(make_results())
        seo_avg = table.category_average(BotCategory.SEO_CRAWLER)
        # crawl 0.25, disallow (100+270)/400 = 0.925 -> avg 0.5875
        assert abs(seo_avg - 0.5875) < 1e-9

    def test_directive_average_across_categories(self):
        table = category_compliance(make_results())
        crawl_avg = table.directive_average(Directive.CRAWL_DELAY)
        # SEO 0.25, AI Data 0.5 -> 0.375
        assert abs(crawl_avg - 0.375) < 1e-9

    def test_best_category_and_directive(self):
        table = category_compliance(make_results())
        assert table.best_category() is BotCategory.AI_DATA_SCRAPER
        assert table.best_directive() is Directive.DISALLOW_ALL

    def test_unknown_bot_lands_in_other(self):
        results = {
            "MysteryBot": {
                Directive.CRAWL_DELAY: result(
                    "MysteryBot", Directive.CRAWL_DELAY, 1, 10
                )
            }
        }
        table = category_compliance(results)
        assert BotCategory.OTHER in table.cells

    def test_empty_results(self):
        table = category_compliance({})
        assert table.cells == {}
        assert table.directive_average(Directive.CRAWL_DELAY) == 0.0
