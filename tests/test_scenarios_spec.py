"""Scenario grid declaration: expansion, fingerprints, knob edits."""

import dataclasses

import pytest

from repro.exceptions import ConfigError
from repro.scenarios import (
    DeterrenceConfig,
    ScenarioGrid,
    ScenarioSpec,
    deterrence_preset,
    full_grid,
    parse_grid,
    quick_grid,
)


def _tiny_grid(**overrides):
    defaults = dict(
        bots=("GPTBot",),
        strategies=("honest", "fetch_violate"),
        deterrence=(deterrence_preset("none"), deterrence_preset("full")),
        robots=("base",),
        traffic=("steady",),
        days=1,
    )
    defaults.update(overrides)
    return ScenarioGrid(**defaults)


class TestGridExpansion:
    def test_cell_count_is_axis_product(self):
        grid = _tiny_grid()
        assert len(grid) == 4
        assert len(grid.cells()) == 4

    def test_cells_cover_every_combination(self):
        grid = _tiny_grid()
        ids = {spec.cell_id() for spec in grid.cells()}
        assert ids == {
            "GPTBot|honest|none|base|steady",
            "GPTBot|honest|full|base|steady",
            "GPTBot|fetch_violate|none|base|steady",
            "GPTBot|fetch_violate|full|base|steady",
        }

    def test_expansion_order_is_deterministic(self):
        grid = _tiny_grid()
        assert [s.cell_id() for s in grid.cells()] == [
            s.cell_id() for s in grid.cells()
        ]

    def test_quick_grid_is_the_ci_shape(self):
        grid = quick_grid()
        # 1 bot x 3 strategies x 3 deterrence x 2 robots x 1 traffic
        assert len(grid) == 18

    def test_full_grid_is_hundreds_of_cells(self):
        assert len(full_grid()) >= 300

    def test_empty_bots_rejected(self):
        with pytest.raises(ConfigError):
            _tiny_grid(bots=())

    def test_duplicate_deterrence_names_rejected(self):
        with pytest.raises(ConfigError):
            _tiny_grid(
                deterrence=(
                    deterrence_preset("none"),
                    deterrence_preset("none"),
                )
            )


class TestSpecValidation:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigError):
            ScenarioSpec(
                bot="GPTBot",
                strategy="teleport",
                deterrence=deterrence_preset("none"),
                robots_version="base",
                traffic="steady",
            )

    def test_unknown_robots_version_rejected(self):
        with pytest.raises(ConfigError):
            ScenarioSpec(
                bot="GPTBot",
                strategy="honest",
                deterrence=deterrence_preset("none"),
                robots_version="v9",
                traffic="steady",
            )

    def test_unknown_traffic_mix_rejected(self):
        with pytest.raises(ConfigError):
            ScenarioSpec(
                bot="GPTBot",
                strategy="honest",
                deterrence=deterrence_preset("none"),
                robots_version="base",
                traffic="tsunami",
            )

    def test_adversarial_label(self):
        honest = ScenarioSpec(
            bot="GPTBot",
            strategy="honest",
            deterrence=deterrence_preset("none"),
            robots_version="base",
            traffic="steady",
        )
        rotated = dataclasses.replace(honest, strategy="ua_rotation")
        assert not honest.is_adversarial()
        assert rotated.is_adversarial()


class TestFingerprints:
    def test_fingerprint_is_stable(self):
        spec = quick_grid().cells()[0]
        assert spec.fingerprint() == spec.fingerprint()

    def test_every_cell_fingerprint_distinct(self):
        specs = quick_grid().cells()
        assert len({s.fingerprint() for s in specs}) == len(specs)

    def test_fingerprint_covers_deterrence_fields(self):
        spec = quick_grid().cells()[0]
        tweaked = dataclasses.replace(
            spec,
            deterrence=dataclasses.replace(
                spec.deterrence, ratelimit_capacity=99.0
            ),
        )
        assert spec.fingerprint() != tweaked.fingerprint()

    def test_fingerprint_independent_of_grid_membership(self):
        """The same cell in two different grids keys identically —
        the property that makes sub-grids fully warm."""
        big = quick_grid()
        small = dataclasses.replace(
            big, strategies=("honest",), robots=("base",)
        )
        big_fps = {s.cell_id(): s.fingerprint() for s in big.cells()}
        for spec in small.cells():
            assert spec.fingerprint() == big_fps[spec.cell_id()]

    def test_grid_fingerprint_changes_with_shape(self):
        grid = _tiny_grid()
        wider = _tiny_grid(robots=("base", "v3"))
        assert grid.fingerprint() != wider.fingerprint()


class TestKnobEdits:
    def test_with_knob_rewrites_only_named_config(self):
        grid = _tiny_grid()
        edited = grid.with_knob("full.ratelimit_capacity=12")
        by_name = {c.name: c for c in edited.deterrence}
        assert by_name["full"].ratelimit_capacity == 12.0
        assert by_name["none"] == deterrence_preset("none")

    def test_with_knob_changes_only_affected_cell_fingerprints(self):
        grid = _tiny_grid()
        edited = grid.with_knob("full.ratelimit_capacity=12")
        before = {s.cell_id(): s.fingerprint() for s in grid.cells()}
        for spec in edited.cells():
            if spec.deterrence.name == "full":
                assert spec.fingerprint() != before[spec.cell_id()]
            else:
                assert spec.fingerprint() == before[spec.cell_id()]

    def test_boolean_and_none_coercion(self):
        grid = _tiny_grid()
        edited = grid.with_knob("full.tarpit=false").with_knob(
            "full.escalation_strikes=none"
        )
        config = {c.name: c for c in edited.deterrence}["full"]
        assert config.tarpit is False
        assert config.escalation_strikes is None

    def test_tuple_coercion(self):
        grid = _tiny_grid()
        edited = grid.with_knob("full.tarpit_agents=Scrapy,curl")
        config = {c.name: c for c in edited.deterrence}["full"]
        assert config.tarpit_agents == ("Scrapy", "curl")

    def test_unknown_config_rejected(self):
        with pytest.raises(ConfigError):
            _tiny_grid().with_knob("ratelimit.ratelimit_capacity=1")

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError):
            _tiny_grid().with_knob("full.lasers=on")

    def test_malformed_setting_rejected(self):
        with pytest.raises(ConfigError):
            _tiny_grid().with_knob("full.ratelimit_capacity")

    def test_renaming_via_knob_rejected(self):
        with pytest.raises(ConfigError):
            _tiny_grid().with_knob("full.name=other")


class TestParseGrid:
    def test_presets(self):
        assert len(parse_grid("quick")) == 18
        assert len(parse_grid("full")) >= 300

    def test_preset_day_and_seed_overrides(self):
        grid = parse_grid("quick", days=3, seed=7)
        assert grid.days == 3
        assert grid.seed == 7

    def test_axis_syntax(self):
        grid = parse_grid(
            "bots=GPTBot,Bytespider;strategy=honest,spoof_asn;"
            "deterrence=none,full;robots=base,v3;traffic=steady,burst"
        )
        assert len(grid) == 2 * 2 * 2 * 2 * 2
        assert {c.name for c in grid.deterrence} == {"none", "full"}

    def test_axis_defaults(self):
        grid = parse_grid("bots=GPTBot")
        assert len(grid) == 1
        assert grid.strategies == ("honest",)

    def test_inline_scalars(self):
        grid = parse_grid("bots=GPTBot;days=5;seed=3;accesses_target=100")
        assert (grid.days, grid.seed, grid.accesses_target) == (5, 3, 100)

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigError):
            parse_grid("bots=GPTBot;color=red")

    def test_missing_bots_rejected(self):
        with pytest.raises(ConfigError):
            parse_grid("strategy=honest")

    def test_unknown_deterrence_preset_rejected(self):
        with pytest.raises(ConfigError):
            parse_grid("bots=GPTBot;deterrence=shields")


class TestDeterrenceConfig:
    def test_presets_are_value_objects(self):
        assert deterrence_preset("full") == deterrence_preset("full")
        assert " at 0x" not in repr(deterrence_preset("full"))

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigError):
            deterrence_preset("nuclear")

    def test_config_repr_is_cache_key_safe(self):
        config = DeterrenceConfig(name="x", ratelimit_capacity=5.0)
        assert repr(config) == repr(
            DeterrenceConfig(name="x", ratelimit_capacity=5.0)
        )
