"""Unit tests for log preprocessing: scanners, enrichment."""

from repro.logs.preprocess import (
    Preprocessor,
    find_scanner_ips,
    known_bot_records,
    looks_like_probe,
    records_by_bot,
    records_by_category,
)
from repro.logs.schema import LogRecord
from repro.uaparse.categories import BotCategory


def record(
    path: str = "/a",
    ip: str = "ip1",
    ua: str = "Mozilla/5.0 Chrome/120",
    asn: int = 15169,
    timestamp: float = 0.0,
) -> LogRecord:
    return LogRecord(
        useragent=ua,
        timestamp=timestamp,
        ip_hash=ip,
        asn=asn,
        sitename="s.example",
        uri_path=path,
        status_code=200,
        bytes_sent=10,
    )


class TestProbeHeuristic:
    def test_probe_paths(self):
        assert looks_like_probe("/wp-admin/setup-config.php")
        assert looks_like_probe("/.env")
        assert looks_like_probe("/vendor/phpunit/whatever")

    def test_normal_paths(self):
        assert not looks_like_probe("/news/article-001")
        assert not looks_like_probe("/")


class TestScannerDetection:
    def test_scanner_ip_found(self):
        records = [record(path="/.env", ip="scanner") for _ in range(25)]
        records += [record(path="/news/a", ip="human") for _ in range(25)]
        assert find_scanner_ips(records) == {"scanner"}

    def test_low_volume_ip_not_flagged(self):
        records = [record(path="/.env", ip="light") for _ in range(5)]
        assert find_scanner_ips(records) == set()

    def test_mixed_traffic_below_fraction_not_flagged(self):
        records = [record(path="/.env", ip="mixed") for _ in range(10)]
        records += [record(path="/news/a", ip="mixed") for _ in range(30)]
        assert find_scanner_ips(records) == set()


class TestPreprocessor:
    def test_scanner_records_removed(self):
        records = [record(path="/wp-login.php", ip="scanner") for _ in range(30)]
        records += [record(path="/news/a", ip="ok")]
        kept, report = Preprocessor().run(records)
        assert len(kept) == 1
        assert report.scanner_records == 30
        assert report.scanner_ips == {"scanner"}
        assert report.input_records == 31

    def test_bot_enrichment(self):
        records = [record(ua="GPTBot/1.2")]
        kept, report = Preprocessor().run(records)
        assert kept[0].bot_name == "GPTBot"
        assert kept[0].bot_category is BotCategory.AI_DATA_SCRAPER
        assert report.identified_bots == 1

    def test_browser_not_identified(self):
        kept, report = Preprocessor().run([record()])
        assert kept[0].bot_name is None
        assert report.identified_bots == 0

    def test_asn_enrichment(self):
        kept, report = Preprocessor().run([record(asn=15169)])
        assert kept[0].asn_name == "GOOGLE"
        assert report.unique_asns == 1

    def test_unknown_asn_synthesized(self):
        kept, _ = Preprocessor().run([record(asn=987654)])
        assert kept[0].asn_name == "AS987654"

    def test_scanner_filter_can_be_disabled(self):
        records = [record(path="/wp-login.php", ip="scanner") for _ in range(30)]
        kept, _ = Preprocessor(drop_scanners=False).run(records)
        assert len(kept) == 30

    def test_partial_whois_map_counts_misses(self):
        """A whois client returning a partial result map must not
        crash the run; unresolved rows stay unenriched."""

        class PartialWhois:
            def lookup_many(self, asns):
                from repro.asn.whois import WhoisResult

                return {
                    asn: WhoisResult(
                        asn=asn, handle=f"AS{asn}", org_name="X", country="US"
                    )
                    for asn in asns
                    if asn == 15169  # drops every other ASN
                }

        records = [record(asn=15169), record(asn=64500), record(asn=64501)]
        kept, report = Preprocessor(whois=PartialWhois()).run(records)
        assert len(kept) == 3
        assert kept[0].asn_name == "AS15169"
        assert kept[1].asn_name is None
        assert kept[2].asn_name is None
        assert report.whois_misses == 2
        assert report.unique_asns == 3

    def test_full_whois_map_reports_zero_misses(self):
        _, report = Preprocessor().run([record(asn=15169)])
        assert report.whois_misses == 0


class TestGrouping:
    def test_known_bot_records(self):
        records = [record(ua="GPTBot/1.2"), record()]
        kept, _ = Preprocessor().run(records)
        assert len(known_bot_records(kept)) == 1

    def test_records_by_bot(self):
        records = [record(ua="GPTBot/1.2"), record(ua="ClaudeBot/1.0"), record()]
        kept, _ = Preprocessor().run(records)
        grouped = records_by_bot(kept)
        assert set(grouped) == {"GPTBot", "ClaudeBot"}

    def test_records_by_category(self):
        records = [record(ua="GPTBot/1.2"), record(ua="AhrefsBot/7.0")]
        kept, _ = Preprocessor().run(records)
        grouped = records_by_category(kept)
        assert BotCategory.AI_DATA_SCRAPER in grouped
        assert BotCategory.SEO_CRAWLER in grouped
