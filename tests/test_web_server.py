"""Unit tests for the in-memory web substrate."""

import numpy as np

from repro.robots.corpus import RobotsVersion, render_version
from repro.web.generator import (
    EXPERIMENT_SITE,
    build_site,
    build_university_sites,
    site_hostnames,
)
from repro.web.message import Request, Response
from repro.web.server import WebServer
from repro.web.site import Page, Website


def make_request(host: str, path: str, timestamp: float = 0.0) -> Request:
    return Request(
        host=host,
        path=path,
        user_agent="TestBot/1.0",
        client_ip="203.0.113.7",
        asn=64512,
        timestamp=timestamp,
    )


def simple_site(hostname: str = "a.example") -> Website:
    site = Website(hostname=hostname)
    site.add_page(Page(path="/", size_bytes=1000, section="home"))
    site.add_page(Page(path="/news/x", size_bytes=2000, section="news"))
    return site


class TestRouting:
    def test_serves_existing_page(self):
        server = WebServer()
        server.host(simple_site())
        response = server.handle(make_request("a.example", "/news/x"))
        assert response.status == 200
        assert response.body_bytes == 2000

    def test_404_for_missing_page(self):
        server = WebServer()
        server.host(simple_site())
        assert server.handle(make_request("a.example", "/missing")).status == 404

    def test_404_for_unknown_host(self):
        server = WebServer()
        assert server.handle(make_request("nope.example", "/")).status == 404

    def test_query_string_ignored_for_lookup(self):
        server = WebServer()
        server.host(simple_site())
        response = server.handle(make_request("a.example", "/news/x?utm=1"))
        assert response.status == 200

    def test_trailing_slash_fallback(self):
        server = WebServer()
        server.host(simple_site())
        assert server.handle(make_request("a.example", "/news/x/")).status == 200

    def test_hooks_called_per_request(self):
        server = WebServer()
        server.host(simple_site())
        seen: list[tuple[Request, Response]] = []
        server.add_hook(lambda request, response: seen.append((request, response)))
        server.handle(make_request("a.example", "/"))
        server.handle(make_request("a.example", "/missing"))
        assert len(seen) == 2
        assert seen[1][1].status == 404
        assert server.requests_handled == 2


class TestRobotsServing:
    def test_robots_txt_served_with_body(self):
        server = WebServer()
        site = simple_site()
        site.set_robots("User-agent: *\nDisallow: /news\n")
        server.host(site)
        response = server.handle(make_request("a.example", "/robots.txt"))
        assert response.status == 200
        assert b"Disallow: /news" in (response.body or b"")

    def test_robots_error_status(self):
        server = WebServer()
        site = simple_site()
        site.set_robots("", status=503)
        server.host(site)
        assert server.handle(make_request("a.example", "/robots.txt")).status == 503

    def test_scheduled_robots_follows_timestamp(self):
        server = WebServer()
        site = simple_site()
        site.schedule_robots(100.0, render_version(RobotsVersion.V1_CRAWL_DELAY))
        site.schedule_robots(200.0, render_version(RobotsVersion.V3_DISALLOW_ALL))
        server.host(site)

        def robots_body(timestamp: float) -> str:
            response = server.handle(
                make_request("a.example", "/robots.txt", timestamp)
            )
            return (response.body or b"").decode()

        assert "Crawl-delay" not in robots_body(50.0)
        assert "Crawl-delay: 30" in robots_body(150.0)
        assert "Disallow: /" in robots_body(250.0)
        assert "Crawl-delay" not in robots_body(250.0)

    def test_sitemap_served(self):
        server = WebServer()
        server.host(simple_site())
        response = server.handle(make_request("a.example", "/sitemap.xml"))
        assert response.status == 200
        assert b"<urlset" in (response.body or b"")


class TestSiteModel:
    def test_section_index_cached_and_invalidated(self):
        site = simple_site()
        assert site.paths_in_section("news") == ["/news/x"]
        site.add_page(Page(path="/news/y", size_bytes=1, section="news"))
        assert sorted(site.paths_in_section("news")) == ["/news/x", "/news/y"]

    def test_total_bytes(self):
        assert simple_site().total_bytes == 3000

    def test_sitemap_lists_html_only(self):
        site = simple_site()
        site.add_page(
            Page(
                path="/page-data/x.json",
                size_bytes=10,
                content_type="application/json",
                section="page-data",
            )
        )
        xml = site.sitemap_xml()
        assert "/news/x" in xml
        assert "page-data" not in xml


class TestGenerator:
    def test_36_sites(self):
        assert len(site_hostnames()) == 36
        assert len(build_university_sites(seed=1)) == 36

    def test_experiment_site_is_people_heavy(self):
        sites = {site.hostname: site for site in build_university_sites(seed=1)}
        directory = sites[EXPERIMENT_SITE]
        assert len(directory.paths_in_section("people")) >= 1000

    def test_every_site_has_page_data_and_meta_paths(self):
        for site in build_university_sites(seed=1):
            assert site.paths_in_section("page-data"), site.hostname
            assert "/404" in site.pages
            assert "/dev-404-page" in site.pages
            assert site.paths_in_section("secure")

    def test_deterministic_generation(self):
        first = build_university_sites(seed=5)
        second = build_university_sites(seed=5)
        assert [site.hostname for site in first] == [s.hostname for s in second]
        assert [len(site) for site in first] == [len(site) for site in second]

    def test_docs_pages_larger_than_page_data(self):
        rng = np.random.default_rng(3)
        site = build_site("x.example", rng, n_docs=30)
        docs = [site.pages[path].size_bytes for path in site.paths_in_section("docs")]
        json_pages = [
            site.pages[path].size_bytes
            for path in site.paths_in_section("page-data")
        ]
        assert sorted(docs)[len(docs) // 2] > sorted(json_pages)[len(json_pages) // 2]
