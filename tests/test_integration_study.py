"""Integration tests: full pipeline invariants on a simulated study.

These tests assert the *shape* findings of the paper reproduce from
the quick-calendar simulation: metric orderings, spoofing rarity,
category rankings — not absolute values.
"""

import pytest

from repro.analysis.compliance import Directive
from repro.reporting.experiments import run_all, run_experiment
from repro.robots.corpus import RobotsVersion
from repro.uaparse.categories import BotCategory


class TestPreprocessing:
    def test_scanners_screened_out(self, quick_analysis):
        report = quick_analysis.preprocess_report
        assert len(report.scanner_ips) == 3
        assert report.scanner_records > 0

    def test_enrichment_applied(self, quick_analysis):
        assert all(
            record.asn_name is not None for record in quick_analysis.records[:100]
        )
        assert quick_analysis.preprocess_report.identified_bots > 0


class TestPhaseSlices:
    def test_all_phases_have_traffic(self, quick_analysis):
        for version in RobotsVersion:
            assert quick_analysis.phase_records(version), version

    def test_directive_records_cover_three_directives(self, quick_analysis):
        assert set(quick_analysis.directive_records) == set(Directive)


class TestHeadlineFindings:
    def test_rq1_crawl_delay_most_complied(self, quick_analysis):
        """Paper RQ1: compliance decreases as directives get stricter."""
        table = quick_analysis.category_table
        crawl = table.directive_average(Directive.CRAWL_DELAY)
        endpoint = table.directive_average(Directive.ENDPOINT)
        disallow = table.directive_average(Directive.DISALLOW_ALL)
        assert crawl > endpoint
        assert crawl > disallow

    def test_rq2_seo_beats_headless(self, quick_analysis):
        """Paper RQ2: SEO crawlers most respectful, headless least."""
        table = quick_analysis.category_table
        seo = table.category_average(BotCategory.SEO_CRAWLER)
        headless = table.category_average(BotCategory.HEADLESS_BROWSER)
        assert seo > 0.5
        assert headless < 0.35
        assert seo > headless + 0.3

    def test_rq3_individual_variation(self, quick_analysis):
        """Paper RQ3: wide variation across individual bots."""
        v3_ratios = [
            results[Directive.DISALLOW_ALL].treatment_ratio
            for results in quick_analysis.per_bot.values()
            if Directive.DISALLOW_ALL in results
        ]
        assert max(v3_ratios) > 0.9
        assert min(v3_ratios) < 0.1

    def test_exempt_bots_absent_from_per_bot(self, quick_analysis):
        for exempt in ("Googlebot", "bingbot", "Baiduspider"):
            assert exempt not in quick_analysis.per_bot

    def test_calibrated_bots_present(self, quick_analysis):
        present = set(quick_analysis.per_bot)
        # The heavyweight Table 6 bots must pass all filters.
        assert {"ChatGPT-User", "HeadlessChrome"} <= present


class TestSpoofing:
    def test_spoofed_bots_found(self, quick_analysis):
        assert len(quick_analysis.spoof_findings) >= 5

    def test_googlebot_flagged_with_suspicious_asns(self, quick_analysis):
        """At quick scale only a couple of Googlebot's 23 spoof ASNs
        emit traffic, but the dominant-ASN structure must hold."""
        finding = quick_analysis.spoof_findings.get("Googlebot")
        assert finding is not None
        assert finding.main_asn_name == "GOOGLE"
        assert len(finding.suspicious_asns) >= 1
        assert finding.spoofed_records >= 1

    def test_spoofed_requests_rare(self, quick_analysis):
        """Paper Table 9: spoofed requests <1% of phase traffic."""
        for version in (
            RobotsVersion.V1_CRAWL_DELAY,
            RobotsVersion.V2_ENDPOINT,
            RobotsVersion.V3_DISALLOW_ALL,
        ):
            legitimate, spoofed = quick_analysis.phase_spoof_counts(version)
            assert spoofed < 0.05 * max(legitimate, 1)

    def test_dominant_share_above_threshold(self, quick_analysis):
        for finding in quick_analysis.spoof_findings.values():
            assert finding.main_share >= 0.9


class TestCheckFrequency:
    def test_some_bots_skip_checks(self, quick_analysis):
        rows = quick_analysis.skipped_checks
        assert rows
        names = {row.bot_name for row in rows}
        # Table 7 archetypes: bots that never check anywhere.
        assert names & {"Axios", "BrightEdge Crawler", "SkypeUriPreview", "Iframely"}

    def test_never_checking_but_compliant_exists(self, quick_analysis):
        """Table 7's interesting case: skipped the check yet complied
        with the crawl delay."""
        rows = quick_analysis.skipped_checks
        assert any(
            not row.checked[Directive.CRAWL_DELAY]
            and row.compliance[Directive.CRAWL_DELAY] > 0.8
            for row in rows
            if Directive.CRAWL_DELAY in row.checked
        )


class TestExperimentDrivers:
    def test_run_all_yields_every_artifact(self, quick_analysis):
        results = run_all(quick_analysis)
        assert len(results) == 15
        for result in results.values():
            assert result.rendered.strip(), result.experiment_id

    def test_table4_consistent_traffic(self, quick_analysis):
        data = run_experiment("T4", quick_analysis).data
        visits = [visits for visits, _ in data.values()]
        assert min(visits) > 0
        # Paper: traffic is broadly consistent across deployments.
        assert max(visits) < 12 * min(visits)

    def test_table2_known_bots_subset(self, quick_analysis):
        data = run_experiment("T2", quick_analysis).data
        all_row = data["All data"]
        bots_row = data["Known bots"]
        assert bots_row.total_page_visits < all_row.total_page_visits
        assert bots_row.unique_user_agents < all_row.unique_user_agents
        assert bots_row.total_bytes <= all_row.total_bytes

    def test_figure2_search_dominates(self, quick_analysis):
        counts = run_experiment("F2", quick_analysis).data
        ranked = sorted(counts, key=counts.get, reverse=True)
        assert ranked[0] in (
            BotCategory.SEARCH_ENGINE_CRAWLER,
            BotCategory.AI_SEARCH_CRAWLER,
        )

    def test_figure3_cdf_monotone(self, quick_analysis):
        series = run_experiment("F3", quick_analysis).data
        for points in series.values():
            values = [value for _, value in points]
            assert values == sorted(values)
            assert values[-1] == pytest.approx(1.0)

    def test_figure10_ai_checks_least(self, quick_analysis):
        proportions = run_experiment("F10", quick_analysis).data
        ai_categories = [
            category
            for category in proportions
            if category
            in (BotCategory.AI_ASSISTANT, BotCategory.AI_SEARCH_CRAWLER)
        ]
        fast_categories = [
            category
            for category in proportions
            if category
            in (BotCategory.SCRAPER, BotCategory.INTELLIGENCE_GATHERER)
        ]
        if ai_categories and fast_categories:
            ai_best = max(proportions[c][168] for c in ai_categories)
            fast_best = max(proportions[c][12] for c in fast_categories)
            assert fast_best >= ai_best
