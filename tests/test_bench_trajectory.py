"""scripts/append_bench_trajectory.py: idempotent, sha-or-content keyed."""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = (
    Path(__file__).resolve().parent.parent
    / "scripts"
    / "append_bench_trajectory.py"
)
_spec = importlib.util.spec_from_file_location("append_bench_trajectory", _SCRIPT)
script = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(script)


def _payload(sha="", entries=None, **extra):
    payload = {
        "schema": 1,
        "sha": sha,
        "python": "3.12.1",
        "platform": "linux",
        "scale": 0.05,
        "seed": 2025,
        "entries": entries
        if entries is not None
        else [
            {
                "kind": "pytest-benchmark",
                "name": "bench_pipeline",
                "mean": 1.25,
                "min": 1.10,
                "median": 1.20,
                "rounds": 5,
                "stddev": 0.01,  # dropped by compaction
            }
        ],
    }
    payload.update(extra)
    return payload


def _write_artifact(tmp_path, payload, name="BENCH_test.json"):
    artifact = tmp_path / name
    artifact.write_text(json.dumps(payload))
    return artifact


def _lines(trajectory: Path) -> list[dict]:
    parsed = []
    if not trajectory.is_file():
        return parsed
    for line in trajectory.read_text().splitlines():
        if not line.strip():
            continue
        try:
            parsed.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return parsed


@pytest.fixture(autouse=True)
def _no_ci_sha(monkeypatch):
    monkeypatch.delenv("GITHUB_SHA", raising=False)


class TestAppend:
    def test_creates_missing_trajectory_file(self, tmp_path):
        artifact = _write_artifact(tmp_path, _payload(sha="abc123"))
        trajectory = tmp_path / "nested" / "BENCH_TRAJECTORY.jsonl"
        code = script.main([str(artifact), "--trajectory", str(trajectory)])
        assert code == 0
        lines = _lines(trajectory)
        assert len(lines) == 1
        assert lines[0]["sha"] == "abc123"

    def test_compacts_pytest_benchmark_entries(self, tmp_path):
        artifact = _write_artifact(tmp_path, _payload(sha="abc123"))
        trajectory = tmp_path / "t.jsonl"
        script.main([str(artifact), "--trajectory", str(trajectory)])
        entry = _lines(trajectory)[0]["entries"][0]
        assert set(entry) == {"name", "kind", "mean", "min", "median", "rounds"}

    def test_unreadable_artifact_fails(self, tmp_path, capsys):
        code = script.main(
            [str(tmp_path / "missing.json"), "--trajectory", str(tmp_path / "t")]
        )
        assert code == 1


class TestShaIdempotence:
    def test_rerun_on_same_sha_is_a_noop(self, tmp_path):
        artifact = _write_artifact(tmp_path, _payload(sha="abc123"))
        trajectory = tmp_path / "t.jsonl"
        assert script.main([str(artifact), "--trajectory", str(trajectory)]) == 0
        assert script.main([str(artifact), "--trajectory", str(trajectory)]) == 0
        assert len(_lines(trajectory)) == 1

    def test_different_shas_both_append(self, tmp_path):
        trajectory = tmp_path / "t.jsonl"
        for sha in ("abc123", "def456"):
            artifact = _write_artifact(
                tmp_path, _payload(sha=sha), name=f"BENCH_{sha}.json"
            )
            script.main([str(artifact), "--trajectory", str(trajectory)])
        assert [line["sha"] for line in _lines(trajectory)] == [
            "abc123",
            "def456",
        ]


class TestEmptyShaIdempotence:
    """The historical bug: empty-sha payloads appended on every rerun."""

    def test_rerun_on_sha_less_payload_is_a_noop(self, tmp_path):
        artifact = _write_artifact(tmp_path, _payload(sha=""))
        trajectory = tmp_path / "t.jsonl"
        script.main([str(artifact), "--trajectory", str(trajectory)])
        script.main([str(artifact), "--trajectory", str(trajectory)])
        assert len(_lines(trajectory)) == 1

    def test_sha_less_payloads_with_different_content_both_append(
        self, tmp_path
    ):
        trajectory = tmp_path / "t.jsonl"
        first = _write_artifact(tmp_path, _payload(sha=""), name="a.json")
        second = _write_artifact(
            tmp_path, _payload(sha="", seed=9), name="b.json"
        )
        script.main([str(first), "--trajectory", str(trajectory)])
        script.main([str(second), "--trajectory", str(trajectory)])
        assert len(_lines(trajectory)) == 2

    def test_recorded_timestamp_does_not_defeat_dedupe(self, tmp_path):
        """The content key ignores the append-time stamp — a line
        recorded earlier still dedupes an identical payload later."""
        trajectory = tmp_path / "t.jsonl"
        line = script.trajectory_line(_payload(sha=""), "2020-01-01T00:00:00Z")
        trajectory.write_text(
            json.dumps(line, sort_keys=True, separators=(",", ":")) + "\n"
        )
        artifact = _write_artifact(tmp_path, _payload(sha=""))
        script.main([str(artifact), "--trajectory", str(trajectory)])
        assert len(_lines(trajectory)) == 1


class TestShaSources:
    def test_cli_sha_overrides_payload(self, tmp_path):
        artifact = _write_artifact(tmp_path, _payload(sha="payload-sha"))
        trajectory = tmp_path / "t.jsonl"
        script.main(
            [str(artifact), "--trajectory", str(trajectory), "--sha", "cli-sha"]
        )
        assert _lines(trajectory)[0]["sha"] == "cli-sha"

    def test_github_sha_fallback_for_sha_less_payload(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("GITHUB_SHA", "env-sha")
        artifact = _write_artifact(tmp_path, _payload(sha=""))
        trajectory = tmp_path / "t.jsonl"
        script.main([str(artifact), "--trajectory", str(trajectory)])
        assert _lines(trajectory)[0]["sha"] == "env-sha"

    def test_payload_sha_wins_over_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("GITHUB_SHA", "env-sha")
        artifact = _write_artifact(tmp_path, _payload(sha="payload-sha"))
        trajectory = tmp_path / "t.jsonl"
        script.main([str(artifact), "--trajectory", str(trajectory)])
        assert _lines(trajectory)[0]["sha"] == "payload-sha"


class TestTolerance:
    def test_corrupt_lines_do_not_block_appends(self, tmp_path):
        trajectory = tmp_path / "t.jsonl"
        trajectory.write_text("not json\n\n")
        artifact = _write_artifact(tmp_path, _payload(sha="abc123"))
        assert script.main([str(artifact), "--trajectory", str(trajectory)]) == 0
        assert len(_lines(trajectory)) == 1

    def test_dedupe_key_distinguishes_sha_from_content(self):
        with_sha = script.trajectory_line(_payload(sha="abc"), "t")
        without = script.trajectory_line(_payload(sha=""), "t")
        assert script.dedupe_key(with_sha) == "sha:abc"
        assert script.dedupe_key(without).startswith("content:")
