"""Tests that the experiment robots.txt corpus matches Figures 5-8."""

from repro.robots.corpus import (
    EXEMPT_SEO_BOTS,
    RobotsVersion,
    all_versions,
    build_simple_site_robots,
    build_version,
    policy_for_version,
    render_version,
)
from repro.robots.policy import RobotsPolicy


class TestBaseVersion:
    def test_allows_everything_except_meta_paths(self):
        policy = policy_for_version(RobotsVersion.BASE)
        assert policy.can_fetch("AnyBot", "/news/article")
        assert not policy.can_fetch("AnyBot", "/404")
        assert not policy.can_fetch("AnyBot", "/dev-404-page")
        assert not policy.can_fetch("AnyBot", "/secure/area-001")

    def test_no_crawl_delay(self):
        assert policy_for_version(RobotsVersion.BASE).crawl_delay("AnyBot") is None


class TestV1CrawlDelay:
    def test_same_access_as_base(self):
        policy = policy_for_version(RobotsVersion.V1_CRAWL_DELAY)
        assert policy.can_fetch("AnyBot", "/news/article")
        assert not policy.can_fetch("AnyBot", "/secure/x")

    def test_thirty_second_delay_for_everyone(self):
        policy = policy_for_version(RobotsVersion.V1_CRAWL_DELAY)
        assert policy.crawl_delay("AnyBot") == 30.0
        assert policy.crawl_delay("Googlebot") == 30.0


class TestV2Endpoint:
    def test_page_data_only_for_most_bots(self):
        policy = policy_for_version(RobotsVersion.V2_ENDPOINT)
        assert policy.can_fetch("GPTBot", "/page-data/index/page-data.json")
        assert not policy.can_fetch("GPTBot", "/news/article")

    def test_seo_bots_exempt(self):
        policy = policy_for_version(RobotsVersion.V2_ENDPOINT)
        for bot in EXEMPT_SEO_BOTS:
            assert policy.can_fetch(bot, "/news/article"), bot
            assert not policy.can_fetch(bot, "/secure/x"), bot


class TestV3DisallowAll:
    def test_everything_denied_for_most_bots(self):
        policy = policy_for_version(RobotsVersion.V3_DISALLOW_ALL)
        assert not policy.can_fetch("GPTBot", "/")
        assert not policy.can_fetch("GPTBot", "/page-data/x")
        assert policy.can_fetch("GPTBot", "/robots.txt")

    def test_seo_bots_still_exempt(self):
        policy = policy_for_version(RobotsVersion.V3_DISALLOW_ALL)
        assert policy.can_fetch("Googlebot", "/news/article")

    def test_yandex_family_token_not_exempt(self):
        """The paper's Table 6 shows yandex.com/bots governed by the
        catch-all: the 'Yandexbot' exemption does not prefix-match."""
        policy = policy_for_version(RobotsVersion.V3_DISALLOW_ALL)
        assert not policy.can_fetch("yandex.com/bots", "/news/article")
        assert policy.can_fetch("Yandexbot", "/news/article")


class TestStrictnessOrdering:
    def test_versions_in_order(self):
        versions = all_versions()
        assert [version.strictness for version in versions] == [0, 1, 2, 3]

    def test_directive_names(self):
        assert RobotsVersion.V1_CRAWL_DELAY.directive_name == "crawl delay"
        assert RobotsVersion.V3_DISALLOW_ALL.directive_name == "disallow all"

    def test_allowed_path_count_monotonically_decreases(self):
        """Stricter versions allow a (weakly) smaller set of paths for
        a non-exempt bot."""
        sample_paths = [
            "/",
            "/news/a",
            "/page-data/x/page-data.json",
            "/secure/s",
            "/404",
        ]
        allowed_counts = []
        for version in all_versions():
            policy = policy_for_version(version)
            allowed_counts.append(
                sum(policy.can_fetch("GPTBot", path) for path in sample_paths)
            )
        assert allowed_counts == sorted(allowed_counts, reverse=True)


class TestRendering:
    def test_rendered_versions_reparse_equivalently(self):
        for version in all_versions():
            original = build_version(version)
            reparsed = RobotsPolicy.from_text(render_version(version))
            for path in ("/x", "/page-data/a", "/secure/b"):
                for agent in ("GPTBot", "Googlebot"):
                    assert RobotsPolicy.from_robots(original).can_fetch(
                        agent, path
                    ) == reparsed.can_fetch(agent, path), (version, agent, path)


class TestSimpleSiteRobots:
    def test_passive_site_restrictions(self):
        policy = RobotsPolicy.from_robots(build_simple_site_robots())
        assert policy.can_fetch("AnyBot", "/news/x")
        assert not policy.can_fetch("AnyBot", "/404")
        assert not policy.can_fetch("AnyBot", "/secure/x")
