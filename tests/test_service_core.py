"""Unit tests for the decision service core (provider, endpoints)."""

from __future__ import annotations

import asyncio

import pytest

from repro.deterrence.ratelimit import RateLimiter
from repro.exceptions import ServiceError
from repro.robots.cache import DEFAULT_TTL_SECONDS
from repro.service import (
    DecisionService,
    PolicyProvider,
    corpus_resolver,
    directory_resolver,
    static_resolver,
)

ROBOTS = "User-agent: *\nAllow: /public\nDisallow: /\n"


class Clock:
    """A controllable clock for TTL-sensitive tests."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def run(coro):
    return asyncio.run(coro)


class TestPolicyProvider:
    def test_resolves_and_caches(self):
        calls: list[str] = []

        def resolver(origin: str) -> str:
            calls.append(origin)
            return ROBOTS

        provider = PolicyProvider(resolver, clock=Clock())

        async def scenario():
            first = await provider.policy("a.example")
            second = await provider.policy("a.example")
            return first, second

        first, second = run(scenario())
        assert first is second
        assert calls == ["a.example"]
        assert provider.stats.misses == 1
        assert provider.stats.hits == 1

    def test_policy_fast_requires_warm_cache(self):
        provider = PolicyProvider(static_resolver({"a": ROBOTS}), clock=Clock())
        assert provider.policy_fast("a") is None

        async def scenario():
            await provider.policy("a")
            return provider.policy_fast("a")

        assert run(scenario()) is not None

    def test_none_body_allows_all(self):
        provider = PolicyProvider(static_resolver({}), clock=Clock())

        async def scenario():
            policy = await provider.policy("unknown.example")
            return policy.can_fetch("GPTBot", "/anything")

        assert run(scenario()) is True

    def test_resolver_failure_raises_service_error(self):
        def resolver(origin: str) -> str:
            raise OSError("connection refused")

        provider = PolicyProvider(resolver, clock=Clock())
        with pytest.raises(ServiceError, match="connection refused"):
            run(provider.policy("down.example"))
        assert provider.stats.resolve_failures == 1

    def test_ttl_refresh_reuses_identical_compilation(self):
        clock = Clock()
        provider = PolicyProvider(
            static_resolver({"a": ROBOTS}), ttl_seconds=10.0, clock=clock
        )

        async def scenario():
            first = await provider.policy("a")
            clock.advance(11.0)
            second = await provider.policy("a")
            return first, second

        first, second = run(scenario())
        assert second is first  # byte-identical refresh reused the policy
        assert provider.cache.recompilations_avoided == 1
        assert provider.stats.misses == 2

    def test_concurrent_misses_coalesce_to_one_resolve(self):
        calls: list[str] = []

        async def resolver(origin: str) -> str:
            calls.append(origin)
            await asyncio.sleep(0.01)
            return ROBOTS

        provider = PolicyProvider(resolver, clock=Clock())

        async def scenario():
            return await asyncio.gather(
                *[provider.policy("a.example") for _ in range(20)]
            )

        policies = run(scenario())
        assert calls == ["a.example"]
        assert len({id(policy) for policy in policies}) == 1
        assert provider.stats.coalesced == 19
        assert provider.stats.misses == 1

    def test_coalesced_failure_propagates_to_all_waiters(self):
        attempts: list[int] = []

        async def resolver(origin: str) -> str:
            attempts.append(1)
            await asyncio.sleep(0.01)
            raise OSError("boom")

        provider = PolicyProvider(resolver, clock=Clock())

        async def scenario():
            return await asyncio.gather(
                *[provider.policy("a") for _ in range(5)],
                return_exceptions=True,
            )

        results = run(scenario())
        assert len(attempts) == 1
        assert all(isinstance(result, ServiceError) for result in results)

    def test_distinct_origins_do_not_coalesce(self):
        calls: list[str] = []

        async def resolver(origin: str) -> str:
            calls.append(origin)
            await asyncio.sleep(0.005)
            return ROBOTS

        provider = PolicyProvider(resolver, clock=Clock())

        async def scenario():
            await asyncio.gather(
                provider.policy("a"), provider.policy("b")
            )

        run(scenario())
        assert sorted(calls) == ["a", "b"]


class TestResolvers:
    def test_corpus_resolver_origins(self):
        resolver = corpus_resolver()
        assert "Disallow: /" in resolver("v3.example")
        assert "Crawl-delay" in resolver("v1.example")
        assert resolver("missing.example") is None

    def test_directory_resolver_reads_and_rereads(self, tmp_path):
        (tmp_path / "site.example.txt").write_text(
            ROBOTS, encoding="utf-8"
        )
        resolver = directory_resolver(tmp_path)
        assert resolver("site.example") == ROBOTS
        assert resolver("other.example") is None
        (tmp_path / "site.example.txt").write_text(
            "User-agent: *\nDisallow:\n", encoding="utf-8"
        )
        assert "Allow: /public" not in resolver("site.example")


class TestDecisionService:
    def make(self, clock=None, **kwargs) -> DecisionService:
        return DecisionService(
            static_resolver({"s.example": ROBOTS}),
            clock=clock or Clock(),
            **kwargs,
        )

    def test_can_fetch_verdicts(self):
        service = self.make()

        async def scenario():
            allowed = await service.can_fetch(
                "s.example", "GPTBot", "/public/page"
            )
            denied = await service.can_fetch("s.example", "GPTBot", "/hidden")
            return allowed, denied

        allowed, denied = run(scenario())
        assert allowed["allowed"] is True
        assert denied["allowed"] is False
        assert denied["path"] == "/hidden"

    def test_explain_adds_reason(self):
        service = self.make()

        async def scenario():
            return await service.can_fetch(
                "s.example", "GPTBot", "/hidden", explain=True
            )

        payload = run(scenario())
        assert "Disallow: /" in payload["reason"]
        assert payload["group_agents"] == ["*"]

    def test_can_fetch_many_aligns_with_singles(self):
        service = self.make()
        paths = ["/public/a", "/b", "/robots.txt", "/public"]

        async def scenario():
            batch = await service.can_fetch_many("s.example", "GPTBot", paths)
            singles = [
                (await service.can_fetch("s.example", "GPTBot", path))[
                    "allowed"
                ]
                for path in paths
            ]
            return batch, singles

        batch, singles = run(scenario())
        assert batch["allowed"] == singles

    def test_probe_matrix_defaults_to_paper_probes(self):
        service = self.make()

        async def scenario():
            return await service.probe_matrix("s.example")

        payload = run(scenario())
        assert len(payload["matrix"]) == len(payload["agents"])
        assert len(payload["matrix"][0]) == len(payload["paths"])
        assert len(payload["agents"]) > 1

    def test_enforce_robots_denial(self):
        service = self.make()

        async def scenario():
            return await service.enforce(
                "s.example", "GPTBot", "/hidden", client_ip="9.9.9.9"
            )

        payload = run(scenario())
        assert payload["verdict"] == "robots_denied"
        assert payload["status"] == 403

    def test_enforce_served_then_throttled(self):
        clock = Clock()
        service = self.make(
            clock=clock,
            limiter=RateLimiter(capacity=2.0, refill_per_second=0.001),
        )

        async def scenario():
            outcomes = []
            for _ in range(4):
                payload = await service.enforce(
                    "s.example", "GPTBot", "/public/a", client_ip="1.1.1.1"
                )
                outcomes.append(payload["verdict"])
            return outcomes

        outcomes = run(scenario())
        assert outcomes[0] == "served"
        assert "throttled" in outcomes

    def test_enforce_rebinds_policy_after_refresh(self):
        clock = Clock()
        texts = {"s.example": ROBOTS}
        service = DecisionService(
            lambda origin: texts.get(origin), ttl_seconds=10.0, clock=clock
        )

        async def scenario():
            first = await service.enforce("s.example", "GPTBot", "/hidden")
            texts["s.example"] = "User-agent: *\nDisallow:\n"
            clock.advance(11.0)
            second = await service.enforce("s.example", "GPTBot", "/hidden")
            return first, second

        first, second = run(scenario())
        assert first["verdict"] == "robots_denied"
        assert second["verdict"] == "served"

    def test_stats_shape(self):
        clock = Clock()
        service = self.make(clock=clock)

        async def scenario():
            await service.can_fetch("s.example", "GPTBot", "/x")
            service.counter("can_fetch").observe(0.001)
            clock.advance(5.0)
            return service.stats()

        stats = run(scenario())
        assert stats["uptime_s"] == 5.0
        assert stats["cache"]["entries"] == 1
        assert stats["provider"]["misses"] == 1
        assert stats["endpoints"]["can_fetch"]["requests"] == 1
        assert "p99_ms" in stats["endpoints"]["can_fetch"]

    def test_default_ttl_is_the_google_guideline(self):
        service = self.make()
        assert service.provider.cache.ttl_seconds == DEFAULT_TTL_SECONDS
