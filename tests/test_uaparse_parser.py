"""Unit tests for the User-Agent header parser."""

from repro.uaparse.parser import ProductToken, parse_user_agent

GOOGLEBOT = "Mozilla/5.0 (compatible; Googlebot/2.1; +http://www.google.com/bot.html)"
CHROME = (
    "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 "
    "(KHTML, like Gecko) Chrome/120.0.0.0 Safari/537.36"
)


class TestProducts:
    def test_leading_product(self):
        ua = parse_user_agent(GOOGLEBOT)
        assert ua.primary == ProductToken(name="Mozilla", version="5.0")

    def test_all_products_in_order(self):
        ua = parse_user_agent(CHROME)
        names = [product.name for product in ua.products]
        assert names == ["Mozilla", "AppleWebKit", "Chrome", "Safari"]

    def test_product_without_version(self):
        ua = parse_user_agent("curl")
        assert ua.primary == ProductToken(name="curl", version=None)

    def test_str_round_trip(self):
        assert str(ProductToken("GPTBot", "1.2")) == "GPTBot/1.2"
        assert str(ProductToken("curl", None)) == "curl"


class TestComments:
    def test_comment_contents(self):
        ua = parse_user_agent(GOOGLEBOT)
        assert ua.comments == (
            "compatible; Googlebot/2.1; +http://www.google.com/bot.html",
        )

    def test_comment_tokens_split_on_semicolons(self):
        ua = parse_user_agent(GOOGLEBOT)
        assert "compatible" in ua.comment_tokens
        assert "Googlebot/2.1" in ua.comment_tokens

    def test_nested_parentheses_kept(self):
        ua = parse_user_agent("Agent/1.0 (outer (inner) rest)")
        assert ua.comments == ("outer (inner) rest",)

    def test_unterminated_comment_runs_to_end(self):
        ua = parse_user_agent("Agent/1.0 (never closed")
        assert ua.comments == ("never closed",)


class TestIdentifiers:
    def test_identifiers_include_comment_products(self):
        ua = parse_user_agent(GOOGLEBOT)
        assert "Googlebot" in ua.all_identifiers()

    def test_info_urls_skipped(self):
        ua = parse_user_agent(GOOGLEBOT)
        assert not any(
            identifier.startswith("http") for identifier in ua.all_identifiers()
        )

    def test_mentions_case_insensitive(self):
        assert parse_user_agent(GOOGLEBOT).mentions("googlebot")
        assert not parse_user_agent(CHROME).mentions("googlebot")


class TestRobustness:
    def test_empty_value(self):
        ua = parse_user_agent("")
        assert ua.products == ()
        assert ua.primary is None

    def test_none_like_value(self):
        assert parse_user_agent(None).raw == ""  # type: ignore[arg-type]

    def test_garbage_never_raises(self):
        parse_user_agent(")(()((")
        parse_user_agent("\x00\x01")
        parse_user_agent("a/b/c//d")
