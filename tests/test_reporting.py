"""Unit tests for table/figure rendering and the experiment registry."""

import pytest

from repro.reporting.experiments import EXPERIMENTS, run_experiment
from repro.reporting.figures import (
    render_bar_chart,
    render_grouped_bars,
    render_series,
)
from repro.reporting.tables import format_cell, render_kv, render_table


class TestFormatCell:
    def test_float_three_decimals(self):
        assert format_cell(0.12345) == "0.123"

    def test_nan_is_na(self):
        assert format_cell(float("nan")) == "N/A"

    def test_none_is_na(self):
        assert format_cell(None) == "N/A"

    def test_ints_and_strings_verbatim(self):
        assert format_cell(42) == "42"
        assert format_cell("x") == "x"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(
            ["name", "value"], [("short", 1), ("much longer name", 22)]
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        # All data rows align the second column.
        positions = {line.rstrip().rfind(" ") for line in lines[2:]}
        assert len(positions) >= 1

    def test_title(self):
        text = render_table(["a"], [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert text.splitlines()[1] == "========"

    def test_kv(self):
        text = render_kv([("records", 100), ("bots", 5)])
        assert "records" in text and "100" in text


class TestRenderFigures:
    def test_bar_chart_linear(self):
        text = render_bar_chart({"a": 100.0, "b": 50.0})
        lines = text.splitlines()
        assert lines[0].count("#") > lines[1].count("#")

    def test_bar_chart_log_scale_compresses(self):
        linear = render_bar_chart({"a": 10_000.0, "b": 10.0})
        log = render_bar_chart({"a": 10_000.0, "b": 10.0}, log_scale=True)
        bars_linear = linear.splitlines()[1].count("#")
        bars_log = log.splitlines()[1].count("#")
        assert bars_log > bars_linear

    def test_empty_bar_chart(self):
        assert "(no data)" in render_bar_chart({}, title="t")

    def test_series_downsampled(self):
        points = [(f"day-{i:03d}", float(i)) for i in range(100)]
        text = render_series({"s": points}, max_points=10)
        assert text.count("day-") <= 11
        assert "day-099" in text  # last point always kept

    def test_grouped_bars_columns(self):
        text = render_grouped_bars(
            {"cat-a": {"12h": 0.5, "24h": 0.75}, "cat-b": {"12h": 0.1, "24h": 0.2}}
        )
        assert "12h" in text and "24h" in text
        assert "cat-a" in text and "0.75" in text


class TestExperimentRegistry:
    def test_all_fifteen_experiments_registered(self):
        expected = {
            "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9", "T10",
            "F2", "F3", "F4", "F9", "F10", "F11",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment_raises(self, quick_analysis):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("T99", quick_analysis)

    def test_case_insensitive_lookup(self, quick_analysis):
        result = run_experiment("t4", quick_analysis)
        assert result.experiment_id == "T4"
