"""Incremental-analysis flags through the CLI: --cache-dir, --no-cache,
and the cache info/clear/prune subcommand."""

import re

import pytest

from repro.cli import main
from repro.logs.io import write_jsonl
from repro.simulation import SimulationEngine, quick_scenario


def _stats(err: str) -> tuple[int, int]:
    """(hits, misses) parsed from the CLI's cache summary line."""
    match = re.search(r"cache: (\d+) hit\(s\), (\d+) miss\(es\)", err)
    assert match, err
    return int(match.group(1)), int(match.group(2))


@pytest.fixture(scope="module")
def small_log(tmp_path_factory):
    """A small simulated study written as JSONL."""
    dataset = SimulationEngine(
        scenario=quick_scenario(scale=0.05, seed=13), with_noise=False
    ).run()
    log = tmp_path_factory.mktemp("logs") / "study.jsonl"
    write_jsonl(dataset.records, log)
    return log


class TestAnalyzeCacheFlags:
    def test_second_run_serves_everything_from_cache(
        self, small_log, tmp_path, capsys
    ):
        cache = tmp_path / "cache"
        argv = [
            "analyze",
            str(small_log),
            "--cache-dir",
            str(cache),
            "--experiments",
            "T5",
        ]
        assert main(argv) == 0
        cold = capsys.readouterr()
        hits, misses = _stats(cold.err)
        assert hits == 0
        assert misses > 0

        assert main(argv) == 0
        warm = capsys.readouterr()
        hits, misses = _stats(warm.err)
        assert misses == 0
        assert hits > 0
        # Identical rendered output, cold or cached.
        assert warm.out == cold.out

    def test_no_cache_bypasses_reads(self, small_log, tmp_path, capsys):
        cache = tmp_path / "cache"
        argv = [
            "analyze",
            str(small_log),
            "--cache-dir",
            str(cache),
            "--experiments",
            "T5",
        ]
        assert main(argv) == 0
        cold = capsys.readouterr()

        assert main(argv + ["--no-cache"]) == 0
        refreshed = capsys.readouterr()
        hits, misses = _stats(refreshed.err)
        assert hits == 0
        assert misses > 0
        assert refreshed.out == cold.out

        # The refresh republished, so a normal run is all hits again.
        assert main(argv) == 0
        hits, misses = _stats(capsys.readouterr().err)
        assert misses == 0

    def test_without_cache_dir_no_stats_line(self, small_log, capsys):
        assert (
            main(["analyze", str(small_log), "--experiments", "T5"]) == 0
        )
        assert "cache:" not in capsys.readouterr().err


class TestCacheSubcommand:
    def test_info_and_clear(self, small_log, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert (
            main(
                [
                    "analyze",
                    str(small_log),
                    "--cache-dir",
                    str(cache),
                    "--experiments",
                    "T5",
                ]
            )
            == 0
        )
        capsys.readouterr()

        assert main(["cache", "info", "--cache-dir", str(cache)]) == 0
        out = capsys.readouterr().out
        entries = int(re.search(r"entries: (\d+)", out).group(1))
        total = int(
            re.search(r"bytes: ([\d,]+)", out).group(1).replace(",", "")
        )
        assert entries > 0
        assert total > 0

        assert main(["cache", "clear", "--cache-dir", str(cache)]) == 0
        assert f"removed {entries} artifact(s)" in capsys.readouterr().out

        assert main(["cache", "info", "--cache-dir", str(cache)]) == 0
        assert "entries: 0" in capsys.readouterr().out

    def _warm_cache(self, small_log, cache, capsys):
        assert (
            main(
                [
                    "analyze",
                    str(small_log),
                    "--cache-dir",
                    str(cache),
                    "--experiments",
                    "T5",
                ]
            )
            == 0
        )
        capsys.readouterr()

    def test_info_verbose_breaks_bytes_down_per_stage(
        self, small_log, tmp_path, capsys
    ):
        cache = tmp_path / "cache"
        self._warm_cache(small_log, cache, capsys)
        assert (
            main(["cache", "info", "--cache-dir", str(cache), "--verbose"])
            == 0
        )
        out = capsys.readouterr().out
        assert "stages:" in out
        stage_lines = re.findall(r"^  (\S+): (\d+) entries, ([\d,]+) bytes$",
                                 out, re.MULTILINE)
        assert stage_lines
        stages = {name for name, _, _ in stage_lines}
        assert "preprocess" in stages
        total = int(re.search(r"bytes: ([\d,]+)", out).group(1).replace(",", ""))
        attributed = sum(
            int(size.replace(",", "")) for _, _, size in stage_lines
        )
        assert attributed == total

    def test_prune_requires_max_bytes(self, tmp_path, capsys):
        assert main(["cache", "prune", "--cache-dir", str(tmp_path)]) == 2
        assert "--max-bytes" in capsys.readouterr().err

    def test_prune_evicts_down_to_budget(self, small_log, tmp_path, capsys):
        cache = tmp_path / "cache"
        self._warm_cache(small_log, cache, capsys)
        assert main(["cache", "info", "--cache-dir", str(cache)]) == 0
        out = capsys.readouterr().out
        entries = int(re.search(r"entries: (\d+)", out).group(1))
        total = int(re.search(r"bytes: ([\d,]+)", out).group(1).replace(",", ""))
        assert entries > 1

        budget = total // 2
        assert (
            main(
                [
                    "cache",
                    "prune",
                    "--cache-dir",
                    str(cache),
                    "--max-bytes",
                    str(budget),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        match = re.search(
            r"pruned (\d+) artifact\(s\), freed ([\d,]+) bytes; "
            r"(\d+) entries / ([\d,]+) bytes remain",
            out,
        )
        assert match, out
        pruned = int(match.group(1))
        kept_entries = int(match.group(3))
        kept_bytes = int(match.group(4).replace(",", ""))
        assert pruned > 0
        assert pruned + kept_entries == entries
        assert kept_bytes <= budget

        assert main(["cache", "info", "--cache-dir", str(cache)]) == 0
        assert f"entries: {kept_entries}" in capsys.readouterr().out

    def test_prune_to_zero_then_analyze_recomputes(
        self, small_log, tmp_path, capsys
    ):
        cache = tmp_path / "cache"
        self._warm_cache(small_log, cache, capsys)
        assert (
            main(
                [
                    "cache",
                    "prune",
                    "--cache-dir",
                    str(cache),
                    "--max-bytes",
                    "0",
                ]
            )
            == 0
        )
        capsys.readouterr()
        # Everything misses, recomputes, and republishes.
        argv = [
            "analyze",
            str(small_log),
            "--cache-dir",
            str(cache),
            "--experiments",
            "T5",
        ]
        assert main(argv) == 0
        hits, misses = _stats(capsys.readouterr().err)
        assert hits == 0
        assert misses > 0
        assert main(argv) == 0
        hits, misses = _stats(capsys.readouterr().err)
        assert misses == 0
