"""Unit tests for the robots.txt line lexer."""

from repro.robots.lexer import Line, LineKind, strip_bom, tokenize, tokenize_line


class TestTokenizeLine:
    def test_user_agent_line(self):
        line = tokenize_line("User-agent: Googlebot", 1)
        assert line.kind is LineKind.USER_AGENT
        assert line.value == "Googlebot"

    def test_field_names_case_insensitive(self):
        assert tokenize_line("USER-AGENT: x", 1).kind is LineKind.USER_AGENT
        assert tokenize_line("DisAllow: /x", 1).kind is LineKind.DISALLOW

    def test_whitespace_around_colon(self):
        line = tokenize_line("Disallow   :   /private", 3)
        assert line.kind is LineKind.DISALLOW
        assert line.value == "/private"

    def test_comment_stripped(self):
        line = tokenize_line("Allow: /a # trailing comment", 1)
        assert line.kind is LineKind.ALLOW
        assert line.value == "/a"

    def test_full_line_comment(self):
        assert tokenize_line("# just a comment", 1).kind is LineKind.COMMENT

    def test_blank_line(self):
        assert tokenize_line("   ", 1).kind is LineKind.BLANK

    def test_no_colon_is_invalid(self):
        assert tokenize_line("Disallow /x", 1).kind is LineKind.INVALID

    def test_unknown_field_is_invalid(self):
        assert tokenize_line("Clobber: /x", 1).kind is LineKind.INVALID

    def test_common_misspellings_accepted(self):
        assert tokenize_line("Dissallow: /x", 1).kind is LineKind.DISALLOW
        assert tokenize_line("useragent: Bot", 1).kind is LineKind.USER_AGENT
        assert tokenize_line("crawldelay: 5", 1).kind is LineKind.CRAWL_DELAY

    def test_sitemap_value_preserves_case(self):
        line = tokenize_line("Sitemap: https://X.example/Sitemap.XML", 1)
        assert line.kind is LineKind.SITEMAP
        assert line.value == "https://X.example/Sitemap.XML"

    def test_empty_disallow_value(self):
        line = tokenize_line("Disallow:", 1)
        assert line.kind is LineKind.DISALLOW
        assert line.value == ""

    def test_line_number_recorded(self):
        assert tokenize_line("Allow: /", 42).number == 42


class TestTokenize:
    def test_crlf_and_cr_line_endings(self):
        lines = tokenize("User-agent: *\r\nDisallow: /a\rAllow: /b\n")
        kinds = [line.kind for line in lines if line.kind is not LineKind.BLANK]
        assert kinds == [LineKind.USER_AGENT, LineKind.DISALLOW, LineKind.ALLOW]

    def test_bom_stripped(self):
        text = "﻿User-agent: *\n"
        lines = tokenize(text)
        assert lines[0].kind is LineKind.USER_AGENT

    def test_strip_bom_noop_without_bom(self):
        assert strip_bom("abc") == "abc"

    def test_line_numbers_sequential(self):
        lines = tokenize("a\nb\nc")
        assert [line.number for line in lines] == [1, 2, 3]

    def test_empty_document(self):
        lines = tokenize("")
        assert len(lines) == 1
        assert lines[0].kind is LineKind.BLANK

    def test_line_dataclass_frozen(self):
        line = Line(number=1, kind=LineKind.BLANK, value="", raw="")
        try:
            line.value = "x"
            raised = False
        except AttributeError:
            raised = True
        assert raised
