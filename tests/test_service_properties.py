"""Property tests: coalescing never changes decision bytes.

The single-flight path shares one resolve + compile among concurrent
waiters, and a TTL refresh may swap (or byte-identically reuse) the
compiled policy mid-stream.  None of that may be observable in the
verdicts: a concurrent, coalesced run of ``can_fetch`` must produce
**byte-identical** serialized responses to a sequential run against a
fresh service — including when the TTL expires between waves so the
second wave rides a mid-flight refresh.
"""

from __future__ import annotations

import asyncio
from urllib.parse import quote

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import DecisionService, ServiceRouter
from repro.service.router import encode

_SEGMENTS = st.sampled_from(
    ["admin", "api", "page-data", "news", "tmp", "a", "b", "*", "x*y"]
)
_AGENTS = st.sampled_from(
    ["GPTBot", "ClaudeBot", "Googlebot", "CCBot", "Unknown/1.0"]
)


@st.composite
def robots_texts(draw) -> str:
    """A small robots.txt with 1-2 groups and assorted rules."""
    lines: list[str] = []
    for agent in draw(
        st.lists(
            st.sampled_from(["*", "GPTBot", "Googlebot"]),
            min_size=1,
            max_size=2,
            unique=True,
        )
    ):
        lines.append(f"User-agent: {agent}")
        for _ in range(draw(st.integers(min_value=1, max_value=4))):
            verb = draw(st.sampled_from(["Allow", "Disallow"]))
            head = draw(_SEGMENTS)
            tail = draw(st.sampled_from(["", "/", "$", "/*.json"]))
            lines.append(f"{verb}: /{head}{tail}")
    return "\n".join(lines) + "\n"


@st.composite
def probes(draw) -> list[tuple[str, str]]:
    """(agent, path) pairs to interrogate the service with."""
    pairs = []
    for _ in range(draw(st.integers(min_value=1, max_value=8))):
        agent = draw(_AGENTS)
        head = draw(_SEGMENTS)
        sub = draw(st.sampled_from(["", "/item-1", "/data.json", "/%7Ex"]))
        pairs.append((agent, f"/{head}{sub}"))
    return pairs


class Clock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


async def _concurrent_bytes(
    text: str, pairs: list[tuple[str, str]], origin: str
) -> tuple[list[bytes], int, int]:
    """Verdict bytes from two concurrent waves split by a TTL expiry.

    Every task in a wave starts at a cache miss (wave 1: cold; wave 2:
    TTL-expired), so one resolves while the rest coalesce onto its
    in-flight future — the refresh is mid-flight by construction.
    """
    clock = Clock()
    resolves = 0

    async def resolver(requested: str) -> str:
        nonlocal resolves
        resolves += 1
        await asyncio.sleep(0)  # force waiters to pile onto the flight
        return text

    service = DecisionService(resolver, ttl_seconds=100.0, clock=clock)
    router = ServiceRouter(service)

    async def ask(agent: str, path: str) -> bytes:
        return encode(await service.can_fetch(origin, agent, path))

    wave_one = await asyncio.gather(
        *[ask(agent, path) for agent, path in pairs]
    )
    clock.now += 101.0  # expire the TTL: wave two rides a refresh
    wave_two = await asyncio.gather(
        *[ask(agent, path) for agent, path in pairs]
    )
    # The fast sync path must agree with the async path it shadows
    # (paths URL-encoded on the wire so they decode back verbatim).
    for (agent, path), expected in zip(pairs, wave_two):
        fast = router.respond_fast(
            "GET",
            f"/can_fetch?origin={origin}&agent={quote(agent, safe='')}"
            f"&path={quote(path, safe='')}",
        )
        assert fast is not None and fast[1] == expected
    coalesced = service.provider.stats.coalesced
    return list(wave_one) + list(wave_two), resolves, coalesced


async def _sequential_bytes(
    text: str, pairs: list[tuple[str, str]], origin: str
) -> list[bytes]:
    """The oracle: a fresh service asked one probe at a time, with the
    same TTL expiry between waves."""
    clock = Clock()

    def resolver(requested: str) -> str:
        return text

    service = DecisionService(resolver, ttl_seconds=100.0, clock=clock)
    out: list[bytes] = []
    for agent, path in pairs:
        out.append(encode(await service.can_fetch(origin, agent, path)))
    clock.now += 101.0
    for agent, path in pairs:
        out.append(encode(await service.can_fetch(origin, agent, path)))
    return out


@given(text=robots_texts(), pairs=probes())
@settings(max_examples=60, deadline=None)
def test_coalesced_verdicts_byte_identical_to_sequential(text, pairs):
    concurrent, resolves, coalesced = asyncio.run(
        _concurrent_bytes(text, pairs, "prop.example")
    )
    sequential = asyncio.run(_sequential_bytes(text, pairs, "prop.example"))
    assert concurrent == sequential
    # Single-flight really coalesced: exactly one resolve per wave.
    assert resolves == 2
    assert coalesced == 2 * (len(pairs) - 1)


@given(text=robots_texts(), pairs=probes())
@settings(max_examples=30, deadline=None)
def test_refresh_reuses_identical_body_compilation(text, pairs):
    """Across the mid-flight refresh the byte-identical body must
    reuse the compiled policy (the cache's recompilation guard) while
    still producing identical verdict bytes — checked above; here we
    pin the reuse itself so the fast path never silently degrades."""

    async def scenario():
        clock = Clock()

        async def resolver(origin: str) -> str:
            await asyncio.sleep(0)
            return text

        service = DecisionService(resolver, ttl_seconds=50.0, clock=clock)
        first = await service.provider.policy("r.example")
        clock.now += 51.0
        await asyncio.gather(
            *[
                service.can_fetch("r.example", agent, path)
                for agent, path in pairs
            ]
        )
        second = await service.provider.policy("r.example")
        return first is second, service.provider.cache.recompilations_avoided

    reused, avoided = asyncio.run(scenario())
    assert reused
    assert avoided >= 1
