"""Unit tests for the known-bot registry."""

from repro.uaparse.categories import BotCategory, RobotsPromise
from repro.uaparse.registry import default_registry


class TestIdentify:
    def test_googlebot_ua(self):
        record = default_registry().identify(
            "Mozilla/5.0 (compatible; Googlebot/2.1; +http://www.google.com/bot.html)"
        )
        assert record is not None and record.name == "Googlebot"

    def test_specific_beats_generic_google(self):
        record = default_registry().identify("Googlebot-Image/1.0")
        assert record is not None and record.name == "Googlebot-Image"

    def test_gptbot(self):
        record = default_registry().identify(
            "Mozilla/5.0 AppleWebKit/537.36; compatible; GPTBot/1.2"
        )
        assert record is not None
        assert record.name == "GPTBot"
        assert record.entity == "OpenAI"
        assert record.category is BotCategory.AI_DATA_SCRAPER

    def test_yandex_family(self):
        registry = default_registry()
        for ua in (
            "Mozilla/5.0 (compatible; YandexBot/3.0; +http://yandex.com/bots)",
        ):
            record = registry.identify(ua)
            assert record is not None and record.name == "Yandex.com/bots"

    def test_headless_chrome(self):
        record = default_registry().identify(
            "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 "
            "(KHTML, like Gecko) HeadlessChrome/120.0.0.0 Safari/537.36"
        )
        assert record is not None
        assert record.category is BotCategory.HEADLESS_BROWSER

    def test_plain_browser_not_identified(self):
        record = default_registry().identify(
            "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 "
            "(KHTML, like Gecko) Chrome/120.0.0.0 Safari/537.36"
        )
        assert record is None

    def test_case_insensitive(self):
        assert default_registry().identify("GPTBOT/1.0") is not None

    def test_empty_ua(self):
        assert default_registry().identify("") is None

    def test_applebot_extended_distinct(self):
        registry = default_registry()
        plain = registry.identify("Applebot/0.1")
        extended = registry.identify("Applebot-Extended/0.1")
        assert plain is not None and plain.name == "Applebot"
        assert extended is not None and extended.name == "Applebot-Extended"


class TestStandardize:
    def test_exact_name(self):
        record = default_registry().standardize("Googlebot")
        assert record is not None and record.name == "Googlebot"

    def test_fuzzy_variant(self):
        record = default_registry().standardize("google bot")
        assert record is not None and record.name == "Googlebot"

    def test_versioned_name(self):
        record = default_registry().standardize("bingbot/2.0")
        assert record is not None and record.name == "bingbot"

    def test_unknown_name(self):
        assert default_registry().standardize("TotallyNovelBot9000") is None


class TestRegistryShape:
    def test_at_least_130_bots(self):
        """The paper analyzes 130 self-declared bots; the registry must
        cover a population at least that large."""
        assert len(default_registry()) >= 130

    def test_all_categories_represented(self):
        registry = default_registry()
        for category in (
            BotCategory.AI_DATA_SCRAPER,
            BotCategory.AI_ASSISTANT,
            BotCategory.AI_SEARCH_CRAWLER,
            BotCategory.SEARCH_ENGINE_CRAWLER,
            BotCategory.SEO_CRAWLER,
            BotCategory.FETCHER,
            BotCategory.HEADLESS_BROWSER,
            BotCategory.ARCHIVER,
            BotCategory.SCRAPER,
            BotCategory.INTELLIGENCE_GATHERER,
        ):
            assert registry.by_category(category), category

    def test_names_unique(self):
        names = default_registry().names()
        assert len(names) == len(set(names))

    def test_paper_table6_bots_present(self):
        registry = default_registry()
        for name in (
            "AcademicBotRTU",
            "AhrefsBot",
            "Amazonbot",
            "Apache-HttpClient",
            "Applebot",
            "Axios",
            "Bytespider",
            "ChatGPT-User",
            "ClaudeBot",
            "GPTBot",
            "PerplexityBot",
            "PetalBot",
            "SemrushBot",
            "SkypeUriPreview",
        ):
            assert name in registry, name

    def test_promises_match_paper(self):
        registry = default_registry()
        assert registry.get("Bytespider").promise is RobotsPromise.NO
        assert registry.get("PerplexityBot").promise is RobotsPromise.NO
        assert registry.get("GPTBot").promise is RobotsPromise.YES
        assert registry.get("ClaudeBot").promise is RobotsPromise.YES
        assert registry.get("HeadlessChrome").promise is RobotsPromise.UNKNOWN


class TestCategoryOf:
    def test_unknown_defaults_to_other(self):
        assert default_registry().category_of("SomeRandomAgent") is BotCategory.OTHER

    def test_category_labels_round_trip(self):
        for category in BotCategory:
            assert BotCategory.from_label(category.value) is category

    def test_unknown_label_maps_to_other(self):
        assert BotCategory.from_label("Martian Probes") is BotCategory.OTHER
