"""Shared fixtures: one small simulated study reused across tests.

The compressed-calendar simulation is session-scoped because it takes
a couple of seconds; tests must treat the dataset and analysis as
read-only.
"""

from __future__ import annotations

import pytest

from repro.reporting import StudyAnalysis
from repro.simulation import SimulationEngine, quick_scenario


@pytest.fixture(scope="session")
def quick_dataset():
    """A small but complete study: 3-day phases, scale 0.3."""
    engine = SimulationEngine(scenario=quick_scenario(scale=0.3, seed=7))
    return engine.run()


@pytest.fixture(scope="session")
def quick_analysis(quick_dataset):
    """Preprocessed analysis over the quick dataset."""
    return StudyAnalysis(quick_dataset)
