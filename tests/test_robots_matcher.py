"""Unit tests for path matching (RFC 9309 §2.2.2 semantics)."""

from repro.robots.matcher import (
    evaluate_rules,
    normalize_path,
    pattern_matches,
    pattern_specificity,
)
from repro.robots.model import Rule, RuleType


def allow(path: str) -> Rule:
    return Rule(type=RuleType.ALLOW, path=path)


def disallow(path: str) -> Rule:
    return Rule(type=RuleType.DISALLOW, path=path)


class TestPatternMatches:
    def test_simple_prefix(self):
        assert pattern_matches("/fish", "/fish")
        assert pattern_matches("/fish", "/fish.html")
        assert pattern_matches("/fish", "/fish/salmon.html")
        assert not pattern_matches("/fish", "/Fish.asp")
        assert not pattern_matches("/fish", "/catfish")

    def test_trailing_slash(self):
        assert pattern_matches("/fish/", "/fish/")
        assert pattern_matches("/fish/", "/fish/salmon")
        assert not pattern_matches("/fish/", "/fish")

    def test_wildcard_middle(self):
        assert pattern_matches("/*.php", "/index.php")
        assert pattern_matches("/*.php", "/folder/filename.php?params")
        assert not pattern_matches("/*.php", "/")

    def test_dollar_anchor(self):
        assert pattern_matches("/*.php$", "/filename.php")
        assert not pattern_matches("/*.php$", "/filename.php?params")
        assert not pattern_matches("/*.php$", "/filename.php5")

    def test_interior_dollar_is_literal(self):
        assert pattern_matches("/a$b", "/a$b/c")

    def test_empty_pattern_matches_nothing(self):
        assert not pattern_matches("", "/anything")
        assert not pattern_matches("", "")

    def test_wildcard_star_alone(self):
        assert pattern_matches("/*", "/anything")
        assert pattern_matches("*", "/anything")

    def test_multiple_wildcards(self):
        assert pattern_matches("/a*/b*/c", "/a1/b2/c")
        assert not pattern_matches("/a*/b*/c", "/a1/c")

    def test_regex_metacharacters_are_literal(self):
        assert pattern_matches("/a+b", "/a+b")
        assert not pattern_matches("/a+b", "/aab")
        assert pattern_matches("/a(b)c", "/a(b)c")

    def test_query_string_participates(self):
        assert pattern_matches("/page?*", "/page?id=1")


class TestNormalization:
    def test_adds_leading_slash(self):
        assert normalize_path("abc") == "/abc"
        assert normalize_path("") == "/"

    def test_percent_case_insensitive(self):
        assert normalize_path("/a%3cd") == normalize_path("/a%3Cd")

    def test_unreserved_escapes_decoded(self):
        assert normalize_path("/%61bc") == "/abc"

    def test_encoded_slash_stays_encoded(self):
        assert normalize_path("/a%2Fb") == "/a%2Fb"
        assert normalize_path("/a%2fb") == "/a%2Fb"
        assert normalize_path("/a%2Fb") != normalize_path("/a/b")

    def test_matching_after_normalization(self):
        assert pattern_matches("/a%3Cd", "/a%3cd")

    def test_bare_percent_passes_through(self):
        assert normalize_path("/100%") == "/100%"

    def test_multibyte_utf8_escapes_stay_encoded(self):
        # %C3%A9 is "é" in UTF-8; bytewise decoding would corrupt it
        # into the two latin-1 characters "Ã©".
        assert normalize_path("/%C3%A9") == "/%C3%A9"
        assert normalize_path("/%c3%a9") == "/%C3%A9"
        assert "Ã" not in normalize_path("/%c3%a9")

    def test_raw_non_ascii_percent_encoded(self):
        assert normalize_path("/café") == "/caf%C3%A9"

    def test_literal_and_escaped_utf8_match(self):
        assert pattern_matches("/café", "/caf%C3%A9")
        assert pattern_matches("/caf%c3%a9", "/café")
        assert pattern_matches("/caf%C3%A9", "/café/menu")

    def test_reserved_ascii_escape_stays_encoded(self):
        # "?" is not unreserved: %3F must not decode to a literal "?".
        assert normalize_path("/a%3Fb") == "/a%3Fb"


class TestPrecedence:
    def test_longest_match_wins(self):
        rules = [allow("/p"), disallow("/")]
        assert evaluate_rules(rules, "/page").allowed

    def test_longer_disallow_beats_shorter_allow(self):
        rules = [allow("/folder"), disallow("/folder/private")]
        assert not evaluate_rules(rules, "/folder/private/x").allowed
        assert evaluate_rules(rules, "/folder/public").allowed

    def test_equal_length_allow_wins(self):
        rules = [disallow("/page"), allow("/page")]
        assert evaluate_rules(rules, "/page").allowed

    def test_google_example_fish(self):
        # From Google's robots.txt documentation examples.
        rules = [allow("/p"), disallow("/")]
        assert evaluate_rules(rules, "/page").allowed
        rules = [allow("/folder"), disallow("/folder")]
        assert evaluate_rules(rules, "/folder/page").allowed
        rules = [allow("/page"), disallow("/*.htm")]
        assert not evaluate_rules(rules, "/page.htm").allowed

    def test_no_match_defaults_to_allow(self):
        result = evaluate_rules([disallow("/x")], "/y")
        assert result.allowed
        assert result.rule is None

    def test_empty_rules_allow(self):
        assert evaluate_rules([], "/anything").allowed

    def test_empty_disallow_never_matches(self):
        result = evaluate_rules([disallow("")], "/x")
        assert result.allowed
        assert result.rule is None

    def test_winning_rule_reported(self):
        rules = [disallow("/secret")]
        result = evaluate_rules(rules, "/secret/file")
        assert result.rule is rules[0]
        assert result.matched

    def test_wildcard_specificity_by_octets(self):
        # "/a*" (2 octets + *) vs "/ab" — lengths decide.
        rules = [disallow("/a*"), allow("/ab")]
        assert evaluate_rules(rules, "/ab").allowed


class TestSpecificity:
    def test_specificity_is_normalized_length(self):
        assert pattern_specificity("/abc") == 4
        assert pattern_specificity("") == 0

    def test_specificity_counts_decoded_octets(self):
        assert pattern_specificity("/%61bc") == pattern_specificity("/abc")

    def test_specificity_counts_utf8_octets_not_characters(self):
        # "/café" is 5 characters but 10 normalized octets
        # ("/caf%C3%A9"); character counting would report 5.
        assert pattern_specificity("/café") == 10
        assert pattern_specificity("/caf%C3%A9") == 10
        assert pattern_specificity("/café") > pattern_specificity("/cafes")

    def test_multibyte_pattern_beats_shorter_ascii_in_octets(self):
        # "/caf*" (5 octets) would tie "/café" under character
        # counting; under octet counting the multi-byte Disallow (10
        # octets) is more specific and must win.
        rules = [allow("/caf*"), disallow("/café")]
        assert not evaluate_rules(rules, "/café/menu").allowed
        # The shorter allow still governs paths the long rule misses.
        assert evaluate_rules(rules, "/caffeine").allowed
