"""Unit tests for the distributed queue substrate.

Covers the spool's atomic state machine (enqueue / claim-by-rename /
ack / requeue, checksummed blobs), lease acquire/renew/expire and the
heartbeat's lost-lease signal, the worker loop's outcome publishing,
the coordinator's dedup + resume + timeout behavior, and the remote
:class:`~repro.pipeline.store.StoreBackend` seam on the artifact store
(including the degrade-to-recompute accounting for backend failures).

Fault injection — SIGKILLed workers, restarted coordinators — lives in
``tests/test_distributed_fault.py``; whole-pipeline parity in
``tests/test_distributed_parity.py``.
"""

from __future__ import annotations

import time

import pytest

from repro.distributed import (
    DirectoryRemoteStore,
    FilesystemSpool,
    Heartbeat,
    Lease,
    QueueCoordinator,
    SpoolBackend,
    run_sharded_queue,
    task_id_for,
)
from repro.distributed.queue import pack_blob, unpack_blob
from repro.distributed.worker import decode_outcome, process_one
from repro.exceptions import DistributedError, LeaseError, PipelineError
from repro.pipeline.context import PipelineConfig
from repro.pipeline.store import ArtifactStore, StoreBackend


def doubler(xs):
    return [x * 2 for x in xs]


def exploder(_xs):
    raise ValueError("shard worker went boom")


# -- blob framing ---------------------------------------------------------


class TestBlobFraming:
    def test_round_trip(self):
        assert unpack_blob(pack_blob(b"payload")) == b"payload"
        assert unpack_blob(pack_blob(b"")) == b""

    def test_rejects_truncation_and_corruption(self):
        blob = pack_blob(b"payload-bytes")
        assert unpack_blob(blob[:-3]) is None  # torn tail
        assert unpack_blob(blob[5:]) is None  # lost magic
        flipped = blob[:-1] + bytes([blob[-1] ^ 0xFF])
        assert unpack_blob(flipped) is None  # checksum mismatch
        assert unpack_blob(b"") is None
        assert unpack_blob(b"garbage") is None


# -- spool state machine --------------------------------------------------


class TestFilesystemSpool:
    def test_satisfies_backend_protocol(self, tmp_path):
        assert isinstance(FilesystemSpool(tmp_path), SpoolBackend)

    def test_enqueue_claim_ack_lifecycle(self, tmp_path):
        spool = FilesystemSpool(tmp_path)
        assert spool.claim("w1") is None
        assert spool.enqueue("t1", "preprocess", 0, b"work")
        task = spool.claim("w1")
        assert task is not None and task.id == "t1" and task.shard == 0
        assert spool.claim("w2") is None  # exactly-once claim
        assert spool.read_payload("t1") == b"work"
        spool.write_result("t1", b"answer")
        assert spool.ack("t1")
        assert not spool.ack("t1")  # already done
        assert spool.read_result("t1") == b"answer"

    def test_enqueue_dedupes_queued_and_completed_tasks(self, tmp_path):
        spool = FilesystemSpool(tmp_path)
        assert spool.enqueue("t1", "s", 0, b"work")
        assert not spool.enqueue("t1", "s", 0, b"work")  # still pending
        spool.claim("w1")
        assert not spool.enqueue("t1", "s", 0, b"work")  # claimed
        spool.write_result("t1", b"answer")
        spool.ack("t1")
        assert not spool.enqueue("t1", "s", 0, b"work")  # result exists

    def test_requeue_returns_claimed_task_to_pending(self, tmp_path):
        spool = FilesystemSpool(tmp_path)
        spool.enqueue("t1", "s", 0, b"work")
        spool.claim("w1")
        assert spool.claimed_ids() == ["t1"]
        assert spool.requeue("t1")
        assert spool.claimed_ids() == []
        assert spool.claim("w2").id == "t1"
        assert not spool.requeue("t2")  # unknown task: benign

    def test_claim_survives_reaper_steal_between_rename_and_read(
        self, tmp_path, monkeypatch
    ):
        """A reaper can requeue a claim in the window between the
        worker's rename and its read (no lease exists yet): the
        vanished file means "lost the race", never an error."""
        import os as os_module

        spool = FilesystemSpool(tmp_path)
        spool.enqueue("t1", "s", 0, b"one")
        spool.enqueue("t2", "s", 1, b"two")
        real_replace = os_module.replace
        stolen = []

        def stealing_replace(src, dst):
            real_replace(src, dst)
            if not stolen:  # reaper steals the first claim straight back
                stolen.append(dst)
                real_replace(dst, src)

        monkeypatch.setattr(os_module, "replace", stealing_replace)
        task = spool.claim("w1")
        assert task is not None
        assert task.id == "t2"  # moved on to the next candidate
        assert "t1" in [  # the stolen task is pending again
            path.name[: -len(".json")]
            for path in (tmp_path / "tasks" / "pending").iterdir()
        ]

    def test_corrupt_result_reads_as_absent(self, tmp_path):
        spool = FilesystemSpool(tmp_path)
        spool.enqueue("t1", "s", 0, b"work")
        spool.write_result("t1", b"answer")
        result_file = tmp_path / "results" / "t1"
        result_file.write_bytes(result_file.read_bytes()[:-2])
        assert spool.read_result("t1") is None
        assert not spool.has_result("t1")

    def test_task_ids_are_content_keyed(self):
        id_a, _ = task_id_for("preprocess", doubler, [1, 2])
        id_b, _ = task_id_for("preprocess", doubler, [1, 2])
        id_c, _ = task_id_for("preprocess", doubler, [1, 3])
        id_d, _ = task_id_for("other", doubler, [1, 2])
        assert id_a == id_b
        assert id_a != id_c and id_a != id_d
        assert id_a.startswith("preprocess-")


# -- leases ---------------------------------------------------------------


class TestLeases:
    def test_acquire_read_release(self, tmp_path):
        spool = FilesystemSpool(tmp_path)
        lease = Lease.acquire(spool, "t1", "w1", ttl=30.0)
        seen = Lease.read(spool, "t1")
        assert seen == lease and not seen.expired()
        lease.release(spool)
        assert Lease.read(spool, "t1") is None

    def test_release_respects_new_owner(self, tmp_path):
        spool = FilesystemSpool(tmp_path)
        stale = Lease.acquire(spool, "t1", "w1", ttl=30.0)
        Lease.acquire(spool, "t1", "w2", ttl=30.0)  # reaped + re-claimed
        stale.release(spool)  # must not delete w2's lease
        assert Lease.read(spool, "t1").worker_id == "w2"

    def test_renew_extends_and_checks_ownership(self, tmp_path):
        spool = FilesystemSpool(tmp_path)
        lease = Lease.acquire(spool, "t1", "w1", ttl=0.0)
        assert lease.expired()
        renewed = lease.renew(spool, ttl=60.0)
        assert not renewed.expired()
        spool.clear_lease("t1")
        with pytest.raises(LeaseError):
            renewed.renew(spool, ttl=60.0)
        Lease.acquire(spool, "t1", "w2", ttl=60.0)
        with pytest.raises(LeaseError):
            renewed.renew(spool, ttl=60.0)

    def test_heartbeat_flags_lost_lease(self, tmp_path):
        spool = FilesystemSpool(tmp_path)
        lease = Lease.acquire(spool, "t1", "w1", ttl=0.05)
        heartbeat = Heartbeat(spool, lease, ttl=0.05)
        heartbeat.start()
        try:
            # Steal the lease out from under the heartbeat.
            Lease.acquire(spool, "t1", "w2", ttl=60.0)
            deadline = 200
            while not heartbeat.lost and deadline:
                deadline -= 1
                time.sleep(0.01)
        finally:
            heartbeat.stop()
        assert heartbeat.lost

    def test_heartbeat_keeps_lease_alive(self, tmp_path):
        spool = FilesystemSpool(tmp_path)
        lease = Lease.acquire(spool, "t1", "w1", ttl=0.09)
        heartbeat = Heartbeat(spool, lease, ttl=0.09)
        heartbeat.start()
        try:
            time.sleep(0.4)  # several TTLs
            current = Lease.read(spool, "t1")
            assert current is not None and not current.expired()
        finally:
            heartbeat.stop()
        assert not heartbeat.lost


# -- worker loop ----------------------------------------------------------


class TestWorker:
    def _enqueue(self, spool, worker, payload, stage="s"):
        task_id, blob = task_id_for(stage, worker, payload)
        spool.enqueue(task_id, stage, 0, blob)
        return task_id

    def test_process_one_publishes_and_acks(self, tmp_path):
        spool = FilesystemSpool(tmp_path)
        task_id = self._enqueue(spool, doubler, [1, 2, 3])
        assert process_one(spool, "w1", ttl=5.0)
        assert decode_outcome(spool.read_result(task_id)) == (
            "ok",
            [2, 4, 6],
        )
        assert (tmp_path / "tasks" / "done" / f"{task_id}.json").exists()
        assert Lease.read(spool, task_id) is None  # released

    def test_process_one_idle_returns_false(self, tmp_path):
        assert not process_one(FilesystemSpool(tmp_path), "w1")

    def test_worker_exception_becomes_error_outcome(self, tmp_path):
        spool = FilesystemSpool(tmp_path)
        task_id = self._enqueue(spool, exploder, [1])
        assert process_one(spool, "w1", ttl=5.0)
        status, message = decode_outcome(spool.read_result(task_id))
        assert status == "error"
        assert "shard worker went boom" in message

    def test_corrupt_payload_becomes_error_outcome(self, tmp_path):
        spool = FilesystemSpool(tmp_path)
        task_id = self._enqueue(spool, doubler, [1])
        payload_file = tmp_path / "payloads" / task_id
        payload_file.write_bytes(payload_file.read_bytes()[:-4])
        assert process_one(spool, "w1", ttl=5.0)
        status, message = decode_outcome(spool.read_result(task_id))
        assert status == "error"
        assert "missing or corrupt" in message


# -- coordinator ----------------------------------------------------------


class TestCoordinator:
    def test_results_align_with_payloads(self, tmp_path):
        out = run_sharded_queue(
            doubler,
            [[1], [2, 3], [], [4]],
            spool=tmp_path / "spool",
            workers=2,
            stage="map",
            lease_ttl=2.0,
            timeout=60.0,
        )
        assert out == [[2], [4, 6], [], [8]]

    def test_identical_payloads_share_one_task(self, tmp_path):
        spool = tmp_path / "spool"
        out = run_sharded_queue(
            doubler,
            [[], [], [7]],
            spool=spool,
            workers=1,
            stage="map",
            lease_ttl=2.0,
            timeout=60.0,
        )
        assert out == [[], [], [14]]
        done = list((spool / "tasks" / "done").glob("*.json"))
        assert len(done) == 2  # the two empty shards deduped

    def test_empty_payloads_never_touch_the_spool(self, tmp_path):
        spool = tmp_path / "spool"
        assert run_sharded_queue(doubler, [], spool=spool, workers=1) == []
        assert not spool.exists()

    def test_resume_serves_existing_results_without_workers(self, tmp_path):
        spool = tmp_path / "spool"
        first = run_sharded_queue(
            doubler,
            [[1], [2]],
            spool=spool,
            workers=1,
            stage="map",
            lease_ttl=2.0,
            timeout=60.0,
        )
        # No workers at all: only already-published results can answer.
        second = run_sharded_queue(
            doubler,
            [[1], [2]],
            spool=spool,
            workers=0,
            stage="map",
            timeout=5.0,
        )
        assert second == first

    def test_worker_error_raises_distributed_error(self, tmp_path):
        with pytest.raises(DistributedError, match="shard worker went boom"):
            run_sharded_queue(
                exploder,
                [[1]],
                spool=tmp_path / "spool",
                workers=1,
                stage="map",
                lease_ttl=2.0,
                timeout=60.0,
            )

    def test_timeout_without_workers_raises(self, tmp_path):
        with pytest.raises(DistributedError, match="timed out"):
            run_sharded_queue(
                doubler,
                [[1]],
                spool=tmp_path / "spool",
                workers=0,
                stage="map",
                poll=0.01,
                timeout=0.2,
            )

    def test_reap_requeues_expired_lease(self, tmp_path):
        spool = FilesystemSpool(tmp_path / "spool")
        task_id, blob = task_id_for("map", doubler, [5])
        spool.enqueue(task_id, "map", 0, blob)
        # Simulate a claimed task whose holder died: expired lease.
        assert spool.claim("dead-worker").id == task_id
        spool.write_lease(
            task_id,
            {"task": task_id, "worker": "dead-worker", "expires": 0.0},
        )
        coordinator = QueueCoordinator(
            spool, lease_ttl=0.2, poll=0.01, timeout=10.0
        )
        attempts: dict[str, int] = {}
        coordinator._reap({task_id}, set(), attempts, "map")
        assert attempts[task_id] == 1
        assert spool.claim("w2").id == task_id  # back in pending


# -- config validation ----------------------------------------------------


class TestQueueConfig:
    def test_queue_executor_requires_spool(self):
        with pytest.raises(PipelineError, match="requires a spool"):
            PipelineConfig(executor="queue")

    def test_spool_is_normalized_to_str(self, tmp_path):
        config = PipelineConfig(executor="queue", spool=tmp_path)
        assert config.spool == str(tmp_path)

    def test_negative_workers_rejected(self):
        with pytest.raises(PipelineError, match="workers must be >= 0"):
            PipelineConfig(workers=-1)


# -- remote artifact-store backend ---------------------------------------


class _FailingBackend:
    """A remote store whose reads always fail (network down)."""

    def get(self, key: str) -> bytes | None:
        raise OSError("transport down")

    def put(self, key: str, blob: bytes) -> None:
        raise OSError("transport down")

    def exists(self, key: str) -> bool:
        return False


class TestRemoteStoreBackend:
    def test_directory_backend_round_trip(self, tmp_path):
        backend = DirectoryRemoteStore(tmp_path / "remote")
        assert isinstance(backend, StoreBackend)
        assert backend.get("k") is None
        assert not backend.exists("k")
        backend.put("k", b"blob")
        assert backend.exists("k")
        assert backend.get("k") == b"blob"

    def test_store_round_trips_through_backend(self, tmp_path):
        backend = DirectoryRemoteStore(tmp_path / "remote")
        store = ArtifactStore(tmp_path / "cache", backend=backend)
        store.store("key1", {"answer": 42}, stage="s")
        status, value = store.load("key1")
        assert (status, value) == ("hit", {"answer": 42})
        # The blob lives remotely, not in the local objects dir.
        assert backend.exists("key1")
        assert not (tmp_path / "cache" / "objects").exists()

    def test_second_store_instance_shares_remote_blobs(self, tmp_path):
        backend = DirectoryRemoteStore(tmp_path / "remote")
        ArtifactStore(tmp_path / "host-a", backend=backend).store(
            "key1", [1, 2, 3], stage="s"
        )
        other = ArtifactStore(
            tmp_path / "host-b",
            backend=DirectoryRemoteStore(tmp_path / "remote"),
        )
        assert other.load("key1") == ("hit", [1, 2, 3])

    def test_missing_remote_key_is_a_miss(self, tmp_path):
        store = ArtifactStore(
            tmp_path / "cache",
            backend=DirectoryRemoteStore(tmp_path / "remote"),
        )
        assert store.load("absent") == ("miss", None)

    def test_corrupt_remote_blob_degrades_to_corrupt(self, tmp_path):
        backend = DirectoryRemoteStore(tmp_path / "remote")
        store = ArtifactStore(tmp_path / "cache", backend=backend)
        store.store("key1", "value", stage="s")
        blob = backend.get("key1")
        backend.put("key1", blob[: len(blob) // 2])
        status, value = store.load("key1")
        assert (status, value) == ("corrupt", None)

    def test_failing_backend_degrades_to_error(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache", backend=_FailingBackend())
        status, value = store.load("key1")
        assert (status, value) == ("error", None)

    def test_tampered_remote_payload_is_corrupt_not_fatal(self, tmp_path):
        backend = DirectoryRemoteStore(tmp_path / "remote")
        store = ArtifactStore(tmp_path / "cache", backend=backend)
        store.store("key1", "value", stage="s")
        # Appended bytes break the embedded checksum.
        backend.put("key1", backend.get("key1") + b"x")
        status, _value = store.load("key1")
        assert status == "corrupt"
