"""Adversarial bot behaviours: UA rotation, fetch-then-violate,
distributed low-and-slow — and the observation hook they feed."""

import dataclasses

import pytest

from repro.bots import (
    AdversarialTraits,
    ROTATION_UA_POOL,
    BotAgent,
    adversarial_profiles,
    profile_by_name,
)
from repro.deterrence.gateway import DeterrenceGateway
from repro.exceptions import ConfigError
from repro.robots.corpus import RobotsVersion, policy_for_version, render_version
from repro.scenarios.simulate import CELL_SITE, FLEET_ASNS
from repro.simulation import ObservedGateway, Phase, StudyScenario
from repro.simulation.clock import SECONDS_PER_DAY, epoch
from repro.web.generator import build_site
from repro.web.server import WebServer
from repro.web.site import ROBOTS_PATH

import numpy as np

START = epoch("2025-03-01")


def _observed(version=RobotsVersion.BASE):
    rng = np.random.default_rng(7)
    site = build_site(CELL_SITE, rng, n_news=15, n_events=5, n_people=10, n_docs=5)
    site.set_robots(render_version(version))
    server = WebServer()
    server.host(site)
    return ObservedGateway(DeterrenceGateway(server=server))


def _scenario(days=2, seed=11):
    return StudyScenario(
        phases=(
            Phase(
                version=RobotsVersion.BASE,
                start=START,
                end=START + days * SECONDS_PER_DAY,
            ),
        ),
        overview_start=START,
        overview_end=START + days * SECONDS_PER_DAY,
        experiment_site=CELL_SITE,
        passive_sites=(),
        scale=1.0,
        seed=seed,
    )


def _emit(profile, observed, days=2, volume_factor=0.02):
    agent = BotAgent(profile, _scenario(days=days), observed)
    day = START
    for _ in range(days):
        agent.emit_day(day, volume_factor)
        day += SECONDS_PER_DAY
    return agent


class TestAdversarialTraits:
    def test_probability_bounds_validated(self):
        with pytest.raises(ValueError):
            AdversarialTraits(ua_pool=("a",), ua_rotate_p=1.5)
        with pytest.raises(ValueError):
            AdversarialTraits(violation_rate=-0.1)

    def test_session_rate_factor_must_be_positive(self):
        with pytest.raises(ValueError):
            AdversarialTraits(session_rate_factor=0.0)

    def test_flags(self):
        assert AdversarialTraits(ua_pool=("a",)).rotates_ua
        assert AdversarialTraits(asn_pool=(1,)).distributed
        assert not AdversarialTraits().rotates_ua
        assert not AdversarialTraits().distributed


class TestUaRotation:
    def test_rotator_presents_multiple_uas(self):
        base = profile_by_name("GPTBot")
        profile = dataclasses.replace(
            base,
            adversarial=AdversarialTraits(
                ua_pool=ROTATION_UA_POOL, ua_rotate_p=0.5
            ),
        )
        observed = _observed()
        _emit(profile, observed)
        uas = {obs.user_agent for obs in observed.observations}
        assert len(uas) > 1
        assert uas <= set(ROTATION_UA_POOL)

    def test_plain_profile_presents_one_ua(self):
        observed = _observed()
        _emit(profile_by_name("GPTBot"), observed)
        uas = {obs.user_agent for obs in observed.observations}
        assert uas == {profile_by_name("GPTBot").user_agent}


class TestFetchThenViolate:
    def _violator(self):
        base = profile_by_name("GPTBot")
        return dataclasses.replace(
            base,
            adversarial=AdversarialTraits(
                violate_after_fetch=True, violation_rate=0.6
            ),
        )

    def test_fetches_robots_every_session_then_violates(self):
        observed = _observed(RobotsVersion.V3_DISALLOW_ALL)
        _emit(self._violator(), observed)
        fetches = [
            o for o in observed.observations if o.path == ROBOTS_PATH
        ]
        assert fetches, "violator must fetch robots.txt"
        policy = policy_for_version(RobotsVersion.V3_DISALLOW_ALL)
        token = profile_by_name("GPTBot").robots_token
        violations = [
            o
            for o in observed.observations
            if o.path != ROBOTS_PATH and not policy.can_fetch(token, o.path)
        ]
        assert violations, "violator must request disallowed paths"
        # the robots fetch precedes the first violation in every case
        assert min(o.timestamp for o in fetches) <= min(
            o.timestamp for o in violations
        )


class TestLowSlowFleet:
    def test_sessions_spread_across_fleet_asns(self):
        base = profile_by_name("GPTBot")
        profile = dataclasses.replace(
            base,
            ip_count=16,
            adversarial=AdversarialTraits(
                asn_pool=FLEET_ASNS, session_rate_factor=1.0
            ),
        )
        observed = _observed()
        _emit(profile, observed, volume_factor=0.05)
        asns = {obs.asn for obs in observed.observations}
        assert len(asns) > 1
        assert asns <= set(FLEET_ASNS)

    def test_session_rate_factor_slows_the_crawl(self):
        base = profile_by_name("GPTBot")
        slow = dataclasses.replace(
            base,
            adversarial=AdversarialTraits(session_rate_factor=0.25),
        )
        fast_observed = _observed()
        slow_observed = _observed()
        _emit(base, fast_observed, volume_factor=1.0)
        _emit(slow, slow_observed, volume_factor=1.0)
        assert (
            len(slow_observed.observations) < len(fast_observed.observations)
        )


class TestAdversarialProfiles:
    def test_registry_exposes_the_three_fleet_profiles(self):
        names = {profile.name for profile in adversarial_profiles()}
        assert names == {"UA-Rotator", "RobotsViolator", "LowSlowFleet"}

    def test_profile_by_name_resolves_them(self):
        for name in ("UA-Rotator", "RobotsViolator", "LowSlowFleet"):
            profile = profile_by_name(name)
            assert profile.adversarial is not None

    def test_traits_are_cache_key_safe(self):
        for profile in adversarial_profiles():
            assert " at 0x" not in repr(profile.adversarial)


class TestObservedGateway:
    def test_requires_an_origin(self):
        with pytest.raises(ConfigError):
            ObservedGateway(DeterrenceGateway())

    def test_records_one_observation_per_request(self):
        observed = _observed()
        _emit(profile_by_name("GPTBot"), observed)
        assert observed.observations
        assert all(
            o.outcome == "served" for o in observed.observations
        )  # no deterrence configured
        assert observed.gateway.stats.total == len(observed.observations)

    def test_exposes_server_contract(self):
        observed = _observed()
        assert CELL_SITE in observed.sites
        assert observed.site(CELL_SITE) is not None
        assert observed.site("missing.example") is None
