"""Unit tests for the StudyAnalysis facade."""

from repro.analysis.compliance import Directive
from repro.reporting.study import VERSION_DIRECTIVES, StudyAnalysis, analyze
from repro.robots.corpus import RobotsVersion


class TestVersionDirectiveMap:
    def test_three_measured_versions(self):
        assert VERSION_DIRECTIVES == {
            RobotsVersion.V1_CRAWL_DELAY: Directive.CRAWL_DELAY,
            RobotsVersion.V2_ENDPOINT: Directive.ENDPOINT,
            RobotsVersion.V3_DISALLOW_ALL: Directive.DISALLOW_ALL,
        }

    def test_base_not_a_directive(self):
        assert RobotsVersion.BASE not in VERSION_DIRECTIVES


class TestFacade:
    def test_analyze_convenience(self, quick_dataset):
        analysis = analyze(quick_dataset)
        assert isinstance(analysis, StudyAnalysis)
        assert analysis.scenario is quick_dataset.scenario

    def test_preprocessing_kept_fewer_or_equal(self, quick_analysis):
        assert len(quick_analysis.records) <= len(quick_analysis.dataset.records)

    def test_overview_window_bounds(self, quick_analysis):
        scenario = quick_analysis.scenario
        for record in quick_analysis.overview_records[:200]:
            assert scenario.overview_start <= record.timestamp
            assert record.timestamp < scenario.overview_end

    def test_baseline_is_base_phase(self, quick_analysis):
        phase = quick_analysis.scenario.phase_for_version(RobotsVersion.BASE)
        for record in quick_analysis.baseline_records[:100]:
            assert phase.contains(record.timestamp)
            assert record.sitename == quick_analysis.scenario.experiment_site

    def test_passive_records_on_passive_sites(self, quick_analysis):
        passive = set(quick_analysis.scenario.passive_sites)
        assert quick_analysis.passive_site_records
        for record in quick_analysis.passive_site_records[:100]:
            assert record.sitename in passive

    def test_caching_returns_same_object(self, quick_analysis):
        assert quick_analysis.per_bot is quick_analysis.per_bot
        assert quick_analysis.category_table is quick_analysis.category_table

    def test_phase_summary_structure(self, quick_analysis):
        visits, bots = quick_analysis.phase_summary(RobotsVersion.V1_CRAWL_DELAY)
        assert visits > 0
        assert 0 < bots < 300

    def test_spoof_partitions_cover_flagged_bots(self, quick_analysis):
        for bot_name in quick_analysis.spoof_findings:
            assert bot_name in quick_analysis.spoof_partitions
