"""Unit tests for log IO: JSONL, CSV, and Apache CLF."""

import pytest

from repro.exceptions import LogSchemaError
from repro.logs.io import (
    parse_clf_line,
    read_clf,
    read_csv,
    read_jsonl,
    render_clf_line,
    write_csv,
    write_jsonl,
)
from repro.logs.schema import LogRecord
from repro.uaparse.categories import BotCategory


def sample_records() -> list[LogRecord]:
    return [
        LogRecord(
            useragent="GPTBot/1.2",
            timestamp=1_739_500_000.0,
            ip_hash="abcd1234abcd1234",
            asn=8075,
            sitename="directory.university.edu",
            uri_path="/people/person-001",
            status_code=200,
            bytes_sent=12345,
            referer=None,
            bot_name="GPTBot",
            bot_category=BotCategory.AI_DATA_SCRAPER,
            asn_name="MICROSOFT-CORP-MSN-AS-BLOCK",
        ),
        LogRecord(
            useragent="Mozilla/5.0",
            timestamp=1_739_500_100.5,
            ip_hash="ffff0000ffff0000",
            asn=7922,
            sitename="library.university.edu",
            uri_path="/robots.txt",
            status_code=200,
            bytes_sent=120,
            referer="https://example.com/",
        ),
    ]


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "log.jsonl"
        records = sample_records()
        assert write_jsonl(records, path) == 2
        loaded = list(read_jsonl(path))
        assert loaded == records

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "log.jsonl"
        write_jsonl(sample_records(), path)
        path.write_text(path.read_text() + "\n\n")
        assert len(list(read_jsonl(path))) == 2

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"useragent": "x"\n')
        with pytest.raises(LogSchemaError, match="bad.jsonl:1"):
            list(read_jsonl(path))


class TestCsv:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "log.csv"
        records = sample_records()
        assert write_csv(records, path) == 2
        loaded = list(read_csv(path))
        assert loaded[0].useragent == records[0].useragent
        assert loaded[0].bot_category is BotCategory.AI_DATA_SCRAPER
        assert loaded[1].referer == "https://example.com/"

    def test_timestamps_survive(self, tmp_path):
        path = tmp_path / "log.csv"
        write_csv(sample_records(), path)
        loaded = list(read_csv(path))
        assert loaded[1].timestamp == 1_739_500_100.5


class TestClf:
    LINE = (
        '203.0.113.9 - - [12/Feb/2025:10:30:00 +0000] '
        '"GET /people/person-001 HTTP/1.1" 200 12345 '
        '"https://ref.example/" "GPTBot/1.2"'
    )

    def test_parse_line(self):
        record = parse_clf_line(self.LINE, sitename="x.edu", asn=8075)
        assert record.uri_path == "/people/person-001"
        assert record.status_code == 200
        assert record.bytes_sent == 12345
        assert record.useragent == "GPTBot/1.2"
        assert record.referer == "https://ref.example/"
        assert record.sitename == "x.edu"

    def test_dash_bytes(self):
        line = self.LINE.replace(" 200 12345 ", " 304 - ")
        record = parse_clf_line(line)
        assert record.bytes_sent == 0
        assert record.status_code == 304

    def test_ip_hashing_hook(self):
        record = parse_clf_line(self.LINE, hash_ip=lambda ip: "HASHED")
        assert record.ip_hash == "HASHED"

    def test_unparseable_raises(self):
        with pytest.raises(LogSchemaError):
            parse_clf_line("not a log line at all")

    def test_render_parse_round_trip(self):
        original = sample_records()[0]
        line = render_clf_line(original)
        parsed = parse_clf_line(line, sitename=original.sitename, asn=original.asn)
        assert parsed.uri_path == original.uri_path
        assert parsed.status_code == original.status_code
        assert parsed.bytes_sent == original.bytes_sent
        assert parsed.useragent == original.useragent
        assert abs(parsed.timestamp - original.timestamp) < 1.0

    def test_read_clf_skips_bad_lines(self, tmp_path):
        path = tmp_path / "access.log"
        path.write_text(self.LINE + "\ngarbage\n" + self.LINE + "\n")
        records = list(read_clf(path, sitename="x.edu"))
        assert len(records) == 2


class TestSchema:
    def test_tau_tuple(self):
        record = sample_records()[0]
        assert record.tau == (8075, "abcd1234abcd1234", "GPTBot/1.2")

    def test_is_robots_fetch(self):
        records = sample_records()
        assert not records[0].is_robots_fetch
        assert records[1].is_robots_fetch

    def test_robots_fetch_with_query(self):
        record = sample_records()[1]
        object.__setattr__ if False else None
        record.uri_path = "/robots.txt?cache=1"
        assert record.is_robots_fetch

    def test_iso_timestamp_format(self):
        assert sample_records()[0].iso_timestamp.endswith("Z")
        assert "T" in sample_records()[0].iso_timestamp
