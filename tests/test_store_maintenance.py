"""ArtifactStore maintenance: LRU pruning and per-stage cache info.

``cache prune --max-bytes N`` must evict the *coldest* artifacts first
— recency is file mtime, refreshed on every cache hit — and stop as
soon as the store fits the budget.  ``info(verbose=True)`` attributes
entries and bytes to the stage names recorded in the v2 artifact
headers.
"""

import os

import pytest

from repro.exceptions import PipelineError
from repro.pipeline.store import ArtifactStore


def _fill(store: ArtifactStore, count: int = 5, stage: str = "stage"):
    """Publish ``count`` artifacts with strictly increasing mtimes.

    Returns the keys in publication (= recency) order: keys[0] is the
    coldest artifact, keys[-1] the hottest.
    """
    keys = []
    for index in range(count):
        key = f"{index:02d}" * 32
        store.store(key, {"payload": "x" * 64, "index": index}, stage=stage)
        # Deterministic, widely spaced mtimes: prune ranks by mtime, and
        # sub-second filesystem timestamp granularity must not matter.
        os.utime(store._object_path(key), (1_000_000 + index, 1_000_000 + index))
        keys.append(key)
    return keys


class TestPrune:
    def test_evicts_coldest_first_until_budget_fits(self, tmp_path):
        store = ArtifactStore(tmp_path)
        keys = _fill(store, count=5)
        sizes = {
            key: store._object_path(key).stat().st_size for key in keys
        }
        budget = sizes[keys[3]] + sizes[keys[4]]  # room for the 2 hottest
        result = store.prune(budget)
        assert result.removed == 3
        assert result.kept_entries == 2
        assert result.kept_bytes <= budget
        assert result.freed_bytes == sum(sizes[key] for key in keys[:3])
        assert store.load(keys[4])[0] == "hit"
        assert store.load(keys[3])[0] == "hit"
        assert store.load(keys[0])[0] == "miss"

    def test_noop_when_already_under_budget(self, tmp_path):
        store = ArtifactStore(tmp_path)
        _fill(store, count=3)
        before = store.info()
        result = store.prune(before.total_bytes)
        assert result.removed == 0
        assert result.freed_bytes == 0
        assert store.info().entries == 3

    def test_zero_budget_clears_objects(self, tmp_path):
        store = ArtifactStore(tmp_path)
        _fill(store, count=4)
        result = store.prune(0)
        assert result.removed == 4
        assert result.kept_entries == 0
        assert result.kept_bytes == 0
        assert store.info().entries == 0

    def test_negative_budget_rejected(self, tmp_path):
        with pytest.raises(PipelineError, match="max_bytes"):
            ArtifactStore(tmp_path).prune(-1)

    def test_cache_hit_refreshes_recency(self, tmp_path):
        store = ArtifactStore(tmp_path)
        keys = _fill(store, count=3)
        # Touch the coldest artifact via a cache hit: it becomes the
        # hottest and must survive a prune that evicts two entries.
        assert store.load(keys[0])[0] == "hit"
        size = store._object_path(keys[0]).stat().st_size
        result = store.prune(size)
        assert result.removed == 2
        assert store.load(keys[0])[0] == "hit"
        assert store.load(keys[1])[0] == "miss"
        assert store.load(keys[2])[0] == "miss"

    def test_prune_keeps_latest_pointers(self, tmp_path):
        store = ArtifactStore(tmp_path)
        (key, *_rest) = _fill(store, count=2)
        store.remember("some_stage", key)
        store.prune(0)
        # The pointer survives; the pruned artifact simply misses and is
        # recomputed + republished on the next run.
        assert store.last_key("some_stage") == key
        assert store.load(key)[0] == "miss"

    def test_empty_store_prunes_to_nothing(self, tmp_path):
        result = ArtifactStore(tmp_path / "absent").prune(10)
        assert result.removed == 0
        assert result.kept_entries == 0


class TestVerboseInfo:
    def test_default_info_has_no_stage_breakdown(self, tmp_path):
        store = ArtifactStore(tmp_path)
        _fill(store, count=2)
        assert store.info().stages is None

    def test_stages_attributed_from_headers(self, tmp_path):
        store = ArtifactStore(tmp_path)
        _fill(store, count=2, stage="preprocess")
        store.store("ab" * 32, [1, 2, 3], stage="per_bot[0]")
        info = store.info(verbose=True)
        assert info.entries == 3
        assert set(info.stages) == {"preprocess", "per_bot[0]"}
        count, size = info.stages["preprocess"]
        assert count == 2
        assert size > 0
        assert sum(s for _, s in info.stages.values()) == info.total_bytes

    def test_untagged_and_foreign_files_fall_under_unknown(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.store("cd" * 32, "value")  # stage defaults to ""
        garbage = store._object_path("ef" * 32)
        garbage.parent.mkdir(parents=True, exist_ok=True)
        garbage.write_bytes(b"not an artifact at all")
        info = store.info(verbose=True)
        assert info.stages == {
            "(unknown)": (2, info.total_bytes),
        }
