"""Unit tests for the adaptation-lag analysis."""

from repro.analysis.adaptation import (
    adaptation_by_bot,
    adaptation_result,
    behaviour_lag,
    discovery_lag,
)
from repro.analysis.compliance import Directive
from repro.logs.schema import LogRecord

HOUR = 3600.0
DEPLOY = 1_000_000.0


def record(offset_hours: float, path: str = "/a", ua: str = "Bot/1") -> LogRecord:
    return LogRecord(
        useragent=ua,
        timestamp=DEPLOY + offset_hours * HOUR,
        ip_hash="ip",
        asn=1,
        sitename="s",
        uri_path=path,
        status_code=200,
        bytes_sent=1,
        bot_name="Bot",
    )


class TestDiscoveryLag:
    def test_first_fetch_after_deploy(self):
        records = [record(1.0), record(6.0, path="/robots.txt"), record(8.0)]
        assert discovery_lag(records, DEPLOY) == 6.0

    def test_never_fetched(self):
        assert discovery_lag([record(1.0), record(2.0)], DEPLOY) is None

    def test_pre_deploy_fetches_ignored(self):
        records = [record(-5.0, path="/robots.txt"), record(3.0, path="/robots.txt")]
        assert discovery_lag(records, DEPLOY) == 3.0


class TestBehaviourLag:
    def test_immediate_adaptation(self):
        # Fully compliant from hour zero (disallow metric: robots only).
        records = [record(i, path="/robots.txt") for i in range(10)]
        lag, phase = behaviour_lag(records, DEPLOY, Directive.DISALLOW_ALL)
        assert lag == 0.0
        assert phase == 1.0

    def test_delayed_adaptation(self):
        # Day 1: noncompliant; day 2 onward: compliant.
        records = [record(i, path="/x") for i in range(0, 20, 2)]
        records += [record(30 + i, path="/robots.txt") for i in range(40)]
        lag, phase = behaviour_lag(records, DEPLOY, Directive.DISALLOW_ALL)
        assert lag is not None
        assert lag >= 24.0  # first compliant window starts on day 2

    def test_never_adapts_still_reports_phase_level(self):
        records = [record(i, path="/x") for i in range(20)]
        lag, phase = behaviour_lag(records, DEPLOY, Directive.DISALLOW_ALL)
        # Phase level is 0.0, and the first window trivially reaches it.
        assert phase == 0.0
        assert lag == 0.0

    def test_no_records(self):
        lag, phase = behaviour_lag([], DEPLOY, Directive.DISALLOW_ALL)
        assert lag is None
        assert phase == 0.0


class TestAdaptationResult:
    def test_combined(self):
        records = [record(2.0, path="/robots.txt")] + [
            record(2.0 + i, path="/robots.txt") for i in range(5)
        ]
        result = adaptation_result("Bot", records, DEPLOY, Directive.DISALLOW_ALL)
        assert result.discovered
        assert result.discovery_lag_hours == 2.0
        assert result.adapted


class TestByBot:
    def test_grouping_and_floor(self):
        rich = [record(i, path="/robots.txt") for i in range(12)]
        sparse = [record(1.0)]
        results = adaptation_by_bot(
            {Directive.DISALLOW_ALL: {"Rich": rich, "Sparse": sparse}},
            {Directive.DISALLOW_ALL: DEPLOY},
        )
        assert "Rich" in results
        assert "Sparse" not in results
        assert results["Rich"][Directive.DISALLOW_ALL].adapted

    def test_end_to_end_on_simulation(self, quick_analysis):
        """Bots that check robots.txt discover new versions within the
        phase; the measurement must produce finite lags for them."""
        from repro.logs.preprocess import records_by_bot
        from repro.reporting.study import VERSION_DIRECTIVES

        directive_records = {
            directive: records_by_bot(records)
            for directive, records in quick_analysis.directive_records.items()
        }
        deployments = {
            directive: quick_analysis.scenario.phase_for_version(version).start
            for version, directive in VERSION_DIRECTIVES.items()
        }
        results = adaptation_by_bot(directive_records, deployments)
        assert results
        discovered = [
            result
            for per_directive in results.values()
            for result in per_directive.values()
            if result.discovered
        ]
        assert discovered
        assert all(result.discovery_lag_hours >= 0 for result in discovered)
