"""Evaluate enforceable deterrence against the study's bot population.

The paper concludes that robots.txt "does not provide a universally
respected signal" and calls for "more strongly-enforceable methods".
This example quantifies that contrast: the same calibrated bot
population crawls the same site estate twice —

1. behind a plain server (robots.txt only, compliance voluntary);
2. behind a :class:`~repro.deterrence.DeterrenceGateway` (per-IP rate
   limiting with escalation to temporary blocks, plus a tarpit for
   Bytespider-class agents).

We then compare how much content each bot class actually obtained.

Run with::

    python examples/deterrence_evaluation.py
"""

from collections import defaultdict

from repro.bots import BotAgent, build_profiles
from repro.deterrence import (
    Blocklist,
    DeterrenceGateway,
    EscalationRule,
    RateLimiter,
    TarpitGenerator,
)
from repro.reporting import render_table
from repro.simulation import epoch, quick_scenario
from repro.uaparse import default_registry
from repro.web import WebServer, build_university_sites

#: Bots whose outcomes we track individually.
FOCUS_BOTS = (
    "GPTBot",
    "ClaudeBot",
    "Bytespider",
    "HeadlessChrome",
    "YisouSpider",
    "Googlebot",
)


def run_population(gateway_factory):
    """Drive the focus bots for three days through ``gateway_factory``."""
    scenario = quick_scenario(scale=1.0, seed=42)
    server = WebServer()
    for site in build_university_sites(seed=scenario.seed):
        server.host(site)
    outcomes: dict[str, dict[int, int]] = defaultdict(lambda: defaultdict(int))
    front = gateway_factory(server)

    class _Front:
        """Adapter counting per-bot outcome statuses."""

        sites = server.sites

        @staticmethod
        def handle(request):
            response = front.handle(request)
            record = default_registry().identify(request.user_agent)
            name = record.name if record else "unknown"
            outcomes[name][response.status] += 1
            return response

    profiles = [
        profile for profile in build_profiles() if profile.name in FOCUS_BOTS
    ]
    for profile in profiles:
        agent = BotAgent(profile=profile, scenario=scenario, server=_Front)
        for day in ("2025-02-12", "2025-02-13", "2025-02-14"):
            agent.emit_day(epoch(day))
    return outcomes, front


def summarize(outcomes) -> dict[str, tuple[int, int]]:
    """(content responses, refused responses) per focus bot."""
    summary = {}
    for name, statuses in outcomes.items():
        served = statuses.get(200, 0) + statuses.get(404, 0)
        refused = statuses.get(403, 0) + statuses.get(429, 0)
        summary[name] = (served, refused)
    return summary


def main() -> None:
    print("Pass 1: robots.txt only (voluntary compliance)...")
    plain_outcomes, _ = run_population(lambda server: server)
    plain = summarize(plain_outcomes)

    print("Pass 2: deterrence gateway (rate limit + escalation + tarpit)...")

    def build(server):
        return DeterrenceGateway(
            server=server,
            blocklist=Blocklist(),
            limiter=RateLimiter(capacity=40.0, refill_per_second=0.3),
            escalation=EscalationRule(strikes=8, window_seconds=600.0),
            tarpit=TarpitGenerator(),
            tarpit_agents=("Bytespider",),
        )

    gated_outcomes, gateway = run_population(build)
    gated = summarize(gated_outcomes)

    rows = []
    for key in sorted(plain):
        plain_served, _ = plain[key]
        gated_served, gated_refused = gated.get(key, (0, 0))
        reduction = 1 - gated_served / plain_served if plain_served else 0.0
        rows.append(
            (key, plain_served, gated_served, gated_refused, f"{100 * reduction:.0f}%")
        )
    print()
    print(
        render_table(
            ("Agent", "Served (plain)", "Served (gated)", "Refused", "Reduction"),
            rows,
            title="Content obtained: robots.txt alone vs enforceable gateway",
        )
    )
    stats = gateway.stats
    print(
        f"\nGateway totals: {stats.served} served, {stats.throttled} throttled, "
        f"{stats.blocked} blocked, {stats.tarpitted} tarpitted "
        f"-> {100 * stats.deterred_fraction():.0f}% of requests deterred."
    )
    print(
        "\nThe voluntary regime only restrains bots that choose to comply;\n"
        "the gateway bounds everyone's intake regardless of goodwill — the\n"
        "paper's argument for enforceable deterrence, made quantitative."
    )


if __name__ == "__main__":
    main()
