"""Detect user-agent spoofing with the ASN-dominance heuristic (§5.2).

A site operator scenario: bots with privileged robots.txt treatment
(e.g. Googlebot) are attractive identities to fake.  The paper's
heuristic flags requests that carry a well-known UA but originate
outside the bot's dominant autonomous system.

The example simulates a short study, runs the detector, prints the
Table-8-style findings, and then compares the compliance of
legitimate vs spoofed traffic (the Figure 11 analysis).

Run with::

    python examples/spoofing_detection.py
"""

from repro import StudyAnalysis, run_study
from repro.analysis import Directive, confirm_spoofers, confirmation_rate, sample_for
from repro.reporting import render_table


def main() -> None:
    print("Simulating a study with spoofed shadow traffic (scale 0.15)...")
    dataset = run_study(scale=0.15, seed=99)
    analysis = StudyAnalysis(dataset)

    findings = analysis.spoof_findings
    print(f"\n{len(findings)} bots flagged by the >=90% ASN-dominance heuristic:\n")
    rows = [
        (
            finding.bot_name,
            finding.main_asn_name,
            f"{100 * finding.main_share:.2f}%",
            len(finding.suspicious_asns),
            finding.spoofed_records,
        )
        for finding in sorted(
            findings.values(), key=lambda f: f.spoofed_records, reverse=True
        )
    ]
    print(
        render_table(
            ("Bot", "Dominant ASN", "Share", "Suspicious ASNs", "Spoofed reqs"),
            rows,
            title="Possible spoofing (Table 8 analog)",
        )
    )

    total = len(analysis.records)
    spoofed_total = sum(f.spoofed_records for f in findings.values())
    print(
        f"\nSpoofed traffic is rare: {spoofed_total} of {total:,} records "
        f"({100 * spoofed_total / total:.3f}%) — the paper reports <0.1%."
    )

    print("\nDo spoofed instances respect robots.txt? (Figure 11 analog)")
    rows = []
    for bot_name, partition in sorted(analysis.spoof_partitions.items()):
        if len(partition.spoofed) < 5:
            continue
        legit = sample_for(Directive.DISALLOW_ALL, partition.legitimate)
        spoofed = sample_for(Directive.DISALLOW_ALL, partition.spoofed)
        rows.append(
            (
                bot_name,
                f"{legit.proportion:.3f}",
                f"{spoofed.proportion:.3f}",
                len(partition.spoofed),
            )
        )
    print(
        render_table(
            ("Bot", "Legit robots-share", "Spoofed robots-share", "Spoofed n"),
            rows,
        )
    )
    print(
        "\nSpoofed instances typically show near-zero robots.txt engagement\n"
        "even when the genuine bot complies — the paper's §5.2 conclusion."
    )

    print("\nHoneypot confirmation (the paper's proposed future work):")
    verdicts = confirm_spoofers(analysis.records, findings)
    rows = [
        (
            verdict.bot_name,
            len(verdict.confirmed_asns),
            len(verdict.suspected_asns),
            verdict.dominant_trap_hits,
        )
        for verdict in sorted(
            verdicts.values(),
            key=lambda v: len(v.confirmed_asns),
            reverse=True,
        )
        if verdict.confirmed or verdict.suspected_asns
    ]
    print(
        render_table(
            ("Bot", "Confirmed spoof ASNs", "Suspected only", "Dominant trap hits"),
            rows,
            title="Trap-path cross-check",
        )
    )
    print(
        f"\n{100 * confirmation_rate(verdicts):.0f}% of heuristically flagged "
        "bots have at least one ASN caught requesting a honeypot path —\n"
        "direct evidence the heuristic's minority-ASN traffic is not the "
        "genuine bot."
    )


if __name__ == "__main__":
    main()
