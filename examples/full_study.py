"""Reproduce every table and figure of the paper from one simulation.

Run with::

    python examples/full_study.py [scale]

``scale`` defaults to 0.1 (a tenth of the paper's traffic volume,
~500 k accesses, about a minute end to end).  At scale 1.0 the run
generates the paper's full ~3.9 M raw accesses.

Output: all fifteen artifacts (Tables 2-10, Figures 2-4 and 9-11) in
paper order, printed as text tables/charts.
"""

import sys
import time

from repro import StudyAnalysis, run_study
from repro.reporting import run_all


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    started = time.perf_counter()
    print(f"Simulating the 2025 study at scale {scale} ...")
    dataset = run_study(scale=scale, seed=2025)
    simulated = time.perf_counter()
    print(
        f"  {len(dataset.records):,} raw accesses from "
        f"{dataset.n_bot_agents} bot agents in {simulated - started:.1f}s"
    )

    print("Running the analysis pipeline ...")
    analysis = StudyAnalysis(dataset)
    report = analysis.preprocess_report
    print(
        f"  kept {len(analysis.records):,} records "
        f"({report.scanner_records:,} scanner rows from "
        f"{len(report.scanner_ips)} IP hashes screened out; "
        f"{report.unique_asns} unique ASNs enriched)"
    )
    print()

    for result in run_all(analysis).values():
        print(result.rendered)
        print()
    print(f"Total wall time: {time.perf_counter() - started:.1f}s")


if __name__ == "__main__":
    main()
