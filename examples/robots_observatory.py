"""Track robots.txt evolution over time (the Longpre-et-al. lens).

The paper's motivation rests on longitudinal evidence that robots.txt
files tightened sharply after generative AI's rise.  This example
replays that history for a hypothetical site — open in 2022, AI bots
blocked in 2023, fully closed in 2025 — and shows the observatory's
analytics: restrictiveness series, AI restriction index, change
events (semantic diffs), and the tightening trend.

Run with::

    python examples/robots_observatory.py
"""

from repro.observatory import RobotsObservatory, fully_blocked_agents
from repro.robots import RobotsBuilder
from repro.robots.diff import render_diff
from repro.simulation import epoch

SNAPSHOTS = [
    (
        "2022-01-15",
        RobotsBuilder().group("*").allow("/").disallow("/admin").build_text(),
    ),
    (
        "2023-08-01",
        (
            RobotsBuilder()
            .group("GPTBot")
            .disallow("/")
            .group("CCBot")
            .disallow("/")
            .group("*")
            .allow("/")
            .disallow("/admin")
            .build_text()
        ),
    ),
    (
        "2024-05-01",
        (
            RobotsBuilder()
            .group("GPTBot", "CCBot", "ClaudeBot", "Bytespider", "Amazonbot")
            .disallow("/")
            .group("*")
            .allow("/")
            .disallow("/admin")
            .crawl_delay(10)
            .build_text()
        ),
    ),
    (
        "2025-02-01",
        (
            RobotsBuilder()
            .group("Googlebot")
            .allow("/")
            .group("*")
            .disallow("/")
            .build_text()
        ),
    ),
]


def main() -> None:
    observatory = RobotsObservatory()
    for day, text in SNAPSHOTS:
        observatory.record("news.example", epoch(day), text)

    print("Restrictiveness over time (all probe agents / AI agents):")
    general = observatory.restrictiveness_series("news.example")
    ai = observatory.ai_series("news.example")
    for (when, overall), (_, ai_value), (day, _) in zip(general, ai, SNAPSHOTS):
        print(f"  {day}: overall {overall:.2f}   AI index {ai_value:.2f}")

    print("\nChange events (semantic diffs between snapshots):")
    for event in observatory.change_events("news.example"):
        from datetime import datetime, timezone

        day = datetime.fromtimestamp(event.when, tz=timezone.utc).date()
        direction = "TIGHTENED" if event.tightened else "loosened"
        print(f"\n--- {day}: {direction} "
              f"(strictness {event.diff.strictness_score():+.2f}) ---")
        print(render_diff(event.diff))

    slope = observatory.tightening_slope("news.example")
    latest = observatory.latest("news.example")
    print(f"\nTightening slope: {slope:+.3f} restrictiveness/year "
          f"({'closing down' if slope > 0 else 'opening up'})")
    print(
        "Fully blocked today: "
        + ", ".join(fully_blocked_agents(latest.policy))
    )


if __name__ == "__main__":
    main()
