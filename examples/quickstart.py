"""Quickstart: the robots.txt engine and a miniature compliance study.

Run with::

    python examples/quickstart.py

Walks through the three layers a new user touches first:

1. parse and query a robots.txt file (RFC 9309 semantics);
2. build the paper's experimental robots.txt versions;
3. simulate a small study and print the headline compliance table.
"""

from repro import RobotsPolicy, RobotsVersion, StudyAnalysis, run_experiment, run_study
from repro.robots import RobotsBuilder, policy_for_version, validate


def demo_parse_and_query() -> None:
    """Parse a robots.txt and ask the questions a crawler asks."""
    print("=== 1. Parse and query ===")
    policy = RobotsPolicy.from_text(
        """
        User-agent: Googlebot
        Allow: /
        Crawl-delay: 15

        User-agent: *
        Allow: /allowed-data/
        Disallow: /restricted-data/
        Crawl-delay: 30
        """
    )
    for agent, path in [
        ("Googlebot", "/restricted-data/report"),
        ("GPTBot", "/restricted-data/report"),
        ("GPTBot", "/allowed-data/report"),
    ]:
        decision = policy.decide(agent, path)
        verdict = "ALLOW" if decision.allowed else "DENY"
        print(f"  {agent:10s} {path:28s} -> {verdict:5s} ({decision.reason})")
    print(f"  GPTBot crawl delay: {policy.crawl_delay('GPTBot'):g}s")
    print()


def demo_build_and_validate() -> None:
    """Build a policy file programmatically and lint it."""
    print("=== 2. Build and validate ===")
    text = (
        RobotsBuilder()
        .group("GPTBot", "ClaudeBot")
        .disallow("/")
        .group("*")
        .allow("/")
        .crawl_delay(10)
        .sitemap("https://example.edu/sitemap.xml")
        .build_text()
    )
    print(text)
    findings = validate(text)
    print(f"  validator findings: {len(findings)}")

    # The paper's strictest experimental version, ready-made:
    v3 = policy_for_version(RobotsVersion.V3_DISALLOW_ALL)
    print(f"  v3 blocks GPTBot from /: {not v3.can_fetch('GPTBot', '/')}")
    print(f"  v3 exempts Googlebot:    {v3.can_fetch('Googlebot', '/')}")
    print()


def demo_miniature_study() -> None:
    """Simulate a scaled-down study and measure compliance."""
    print("=== 3. Miniature compliance study (scale 0.02) ===")
    dataset = run_study(scale=0.02, seed=7)
    print(f"  simulated {len(dataset.records):,} web accesses "
          f"from {dataset.n_bot_agents} bots (+{dataset.n_spoof_agents} spoofed)")
    analysis = StudyAnalysis(dataset)
    print()
    print(run_experiment("T5", analysis).rendered)


if __name__ == "__main__":
    demo_parse_and_query()
    demo_build_and_validate()
    demo_miniature_study()
