"""Audit real (or exported) web-server logs for robots.txt compliance.

This is the downstream-operator scenario the paper motivates: you run
a site, you serve a robots.txt, and you want to know which bots
actually respect it.  The example:

1. writes a demo Apache combined-format access log (in practice you
   would point the script at your own ``access.log``);
2. ingests it with the CLF reader, hashing IPs on the way in (the
   paper's IRB anonymization step);
3. enriches and groups records with the known-bot registry;
4. measures crawl-delay and disallow compliance per bot against the
   site's robots.txt.

Run with::

    python examples/compliance_audit.py [path/to/access.log]
"""

import sys
import tempfile
from pathlib import Path

from repro.analysis import crawl_delay_sample, disallow_sample, endpoint_sample
from repro.logs import Preprocessor, read_clf, records_by_bot
from repro.reporting import render_table
from repro.simulation import IpAnonymizer

#: A small demo log: GPTBot politely spaced, Bytespider hammering,
#: plus a browser visitor (ignored by the bot analysis).
DEMO_LOG = """\
198.51.100.7 - - [12/Feb/2025:10:00:00 +0000] "GET /robots.txt HTTP/1.1" 200 180 "-" "Mozilla/5.0 AppleWebKit/537.36; compatible; GPTBot/1.2; +https://openai.com/gptbot"
198.51.100.7 - - [12/Feb/2025:10:00:35 +0000] "GET /page-data/index/page-data.json HTTP/1.1" 200 4210 "-" "Mozilla/5.0 AppleWebKit/537.36; compatible; GPTBot/1.2; +https://openai.com/gptbot"
198.51.100.7 - - [12/Feb/2025:10:01:10 +0000] "GET /page-data/news/page-data.json HTTP/1.1" 200 3902 "-" "Mozilla/5.0 AppleWebKit/537.36; compatible; GPTBot/1.2; +https://openai.com/gptbot"
203.0.113.44 - - [12/Feb/2025:10:00:01 +0000] "GET /news/article-001 HTTP/1.1" 200 24100 "-" "Mozilla/5.0 (compatible; Bytespider; spider-feedback@bytedance.com)"
203.0.113.44 - - [12/Feb/2025:10:00:03 +0000] "GET /news/article-002 HTTP/1.1" 200 23000 "-" "Mozilla/5.0 (compatible; Bytespider; spider-feedback@bytedance.com)"
203.0.113.44 - - [12/Feb/2025:10:00:05 +0000] "GET /news/article-003 HTTP/1.1" 200 27500 "-" "Mozilla/5.0 (compatible; Bytespider; spider-feedback@bytedance.com)"
203.0.113.44 - - [12/Feb/2025:10:00:08 +0000] "GET /people/person-004 HTTP/1.1" 200 51200 "-" "Mozilla/5.0 (compatible; Bytespider; spider-feedback@bytedance.com)"
192.0.2.10 - - [12/Feb/2025:10:05:00 +0000] "GET / HTTP/1.1" 200 30100 "-" "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/121.0.0.0 Safari/537.36"
"""


def audit(log_path: Path) -> None:
    anonymizer = IpAnonymizer(salt="audit-demo")
    records = list(
        read_clf(log_path, sitename="www.example.edu", hash_ip=anonymizer)
    )
    print(f"ingested {len(records)} log lines from {log_path}")

    records, report = Preprocessor().run(records)
    print(
        f"identified {report.identified_bots} bot accesses "
        f"across {report.unique_asns} ASNs\n"
    )

    rows = []
    for bot_name, bot_records in sorted(records_by_bot(records).items()):
        delay = crawl_delay_sample(bot_records)
        endpoint = endpoint_sample(bot_records)
        disallow = disallow_sample(bot_records)
        rows.append(
            (
                bot_name,
                len(bot_records),
                f"{delay.proportion:.2f}",
                f"{endpoint.proportion:.2f}",
                f"{disallow.proportion:.2f}",
            )
        )
    print(
        render_table(
            ("Bot", "Accesses", "Crawl-delay ok", "Endpoint-only", "Robots-only"),
            rows,
            title="Per-bot compliance audit",
        )
    )
    print(
        "\nInterpretation: 'Crawl-delay ok' is the fraction of successive\n"
        "accesses spaced >= 30s; 'Endpoint-only' the fraction touching only\n"
        "/page-data or robots.txt; 'Robots-only' the fraction that would\n"
        "comply with a full Disallow (robots.txt fetches only)."
    )


def main() -> None:
    if len(sys.argv) > 1:
        audit(Path(sys.argv[1]))
        return
    with tempfile.NamedTemporaryFile(
        "w", suffix=".log", delete=False
    ) as handle:
        handle.write(DEMO_LOG)
        demo_path = Path(handle.name)
    print("(no log supplied; using a built-in demo log)\n")
    audit(demo_path)
    demo_path.unlink()


if __name__ == "__main__":
    main()
