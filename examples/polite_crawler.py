"""A polite crawler built on the library's robots.txt engine.

Demonstrates the crawler-side use of the engine: fetch robots.txt
once per origin, honour fetch-failure semantics (4xx allow / 5xx
deny), cache it with the conventional 24-hour TTL, filter frontier
URLs through the policy, and respect the advertised crawl delay —
everything the paper's *compliant* bots (Amazonbot, ClaudeBot,
GPTBot under disallow) were observed doing.

Run with::

    python examples/polite_crawler.py
"""

from repro.robots import RobotsCache, resolve_fetch
from repro.robots.corpus import RobotsVersion, render_version
from repro.simulation import epoch
from repro.web import Request, WebServer, build_university_sites

USER_AGENT = "PoliteBot/1.0 (+https://example.org/politebot)"
ROBOTS_TOKEN = "PoliteBot"


class PoliteCrawler:
    """Minimal compliant crawler over the in-memory web substrate."""

    def __init__(self, server: WebServer) -> None:
        self._server = server
        self._cache = RobotsCache()  # 24 h TTL, like Google's guidance
        self._now = epoch("2025-02-12")

    def crawl(self, host: str, frontier: list[str]) -> list[str]:
        """Fetch every allowed URL in ``frontier``; returns fetched paths."""
        policy = self._policy_for(host)
        delay = policy.crawl_delay(ROBOTS_TOKEN) or 0.0
        fetched = []
        for path in frontier:
            decision = policy.decide(ROBOTS_TOKEN, path)
            if not decision.allowed:
                print(f"    skip {path:34s} ({decision.reason})")
                continue
            response = self._request(host, path)
            print(f"    GET  {path:34s} -> {response.status} "
                  f"({response.body_bytes} bytes), waiting {delay:g}s")
            fetched.append(path)
            self._now += max(delay, 0.5)
        return fetched

    def _policy_for(self, host: str):
        cached = self._cache.get(host, self._now)
        if cached is not None:
            return cached
        response = self._request(host, "/robots.txt")
        result = resolve_fetch(response.status, response.body or b"")
        print(f"  fetched robots.txt ({response.status}) -> "
              f"{result.disposition.value}")
        self._cache.put(host, result.policy, self._now)
        return result.policy

    def _request(self, host: str, path: str):
        request = Request(
            host=host,
            path=path,
            user_agent=USER_AGENT,
            client_ip="198.51.100.99",
            asn=64512,
            timestamp=self._now,
        )
        self._now += 0.2
        return self._server.handle(request)


def main() -> None:
    server = WebServer()
    for site in build_university_sites(seed=1):
        server.host(site)
    host = "library.university.edu"
    frontier = [
        "/",
        "/news/article-001",
        "/secure/area-000",  # disallowed by the site's robots.txt
        "/page-data/index/page-data.json",
        "/404",  # disallowed
    ]

    print(f"--- crawl under the site's default robots.txt ({host}) ---")
    crawler = PoliteCrawler(server)
    crawler.crawl(host, frontier)

    print("\n--- site deploys the paper's v3 (disallow all) ---")
    server.site(host).set_robots(render_version(RobotsVersion.V3_DISALLOW_ALL))
    fresh = PoliteCrawler(server)  # fresh cache: sees the new file
    fetched = fresh.crawl(host, frontier)
    print(f"  fetched under v3: {fetched or 'nothing (fully compliant)'}")

    print("\n--- robots.txt starts returning 503 (assume full disallow) ---")
    server.site(host).set_robots("", status=503)
    erroring = PoliteCrawler(server)
    fetched = erroring.crawl(host, ["/", "/news/article-001"])
    print(f"  fetched while robots.txt 503s: {fetched or 'nothing'}")


if __name__ == "__main__":
    main()
